"""Schedule generators: NCCL-style log parsing and the LLM 3D pattern."""

import pytest

from repro.workload.generators import llm_schedule, parse_nccl_log
from repro.workload.replay import ReplayError, ReplayWorkload, parse_jsonl

NCCL_LOG = """
# two-rank demo
0 Compute us=10
0 AllReduce bytes=4096 group=0,1
1 AllReduce bytes=4096 group=0,1
0 Send peer=1 bytes=1024 tag=x class=p2p
1 Recv peer=0 tag=x
0 Broadcast root=0 bytes=2048
1 Broadcast root=0 bytes=2048
"""


def test_nccl_log_parses_and_replays():
    sched = parse_nccl_log(NCCL_LOG, source="demo.log")
    assert sched.ranks == 2
    res = ReplayWorkload(sched).run(machine="gh200-1x4")
    assert res.class_bytes["p2p"]["bytes"] == 1024
    assert res.class_bytes["broadcast"]["bytes"] == 2048
    # ring allreduce: n ranks x 2*(n-1) rounds x ceil(b/n)-byte chunks
    assert res.class_bytes["replay"]["bytes"] == 2 * 2 * 2048


def test_nccl_repeated_broadcasts_pair_by_occurrence():
    log = (
        "0 Broadcast root=0 bytes=100\n"
        "1 Broadcast root=0 bytes=100\n"
        "0 Broadcast root=0 bytes=200\n"
        "1 Broadcast root=0 bytes=200\n"
    )
    sched = parse_nccl_log(log, source="b.log")
    # Occurrence-keyed tags keep the 100- and 200-byte rounds distinct.
    assert sched.ranks == 2 and len(sched.steps) == 4


def test_nccl_schedule_round_trips():
    sched = parse_nccl_log(NCCL_LOG, source="demo.log")
    again = parse_jsonl(sched.to_jsonl(), source="rt.jsonl")
    assert again.digest == sched.digest


@pytest.mark.parametrize("line,fragment", [
    ("0 Send peer=1", "needs bytes"),
    ("0 Frobnicate bytes=1", "unknown op"),
    ("x Send peer=1 bytes=2", "first token must be the rank"),
    ("0 Compute", "needs us"),
    ("0 Send peer=1 bytes=zz", "must be an integer"),
    ("0 Send peer=1 bytes", "key=value"),
    ("", "empty log"),
])
def test_nccl_errors_carry_file_and_line(line, fragment):
    with pytest.raises(ReplayError, match="bad.log:1") as exc:
        parse_nccl_log(line, source="bad.log")
    assert fragment in str(exc.value)


def test_llm_schedule_shape():
    sched = llm_schedule(dp=2, tp=2, pp=2, layers=2, hidden=64, seq=32,
                         microbatches=1, steps=1)
    assert sched.ranks == 8
    assert sched.has_op("allreduce") and sched.has_op("send")
    # every rank ends the step at the barrier
    barriers = [s for s in sched.steps if s.op == "barrier"]
    assert len(barriers) == 8


def test_llm_schedule_replays_with_expected_classes():
    sched = llm_schedule(dp=2, tp=4, pp=2, layers=2, hidden=256, seq=128,
                         microbatches=1, steps=1)
    assert sched.ranks == 16
    res = ReplayWorkload(sched).run(machine="fat-tree-32-r2-l2", shards=2)
    seq = ReplayWorkload(sched).run(machine="fat-tree-32-r2-l2")
    assert res.digests == seq.digests
    assert res.events_popped == seq.events_popped


def test_llm_schedule_deterministic():
    a = llm_schedule(dp=2, tp=2, pp=1, layers=1, hidden=16, seq=8)
    b = llm_schedule(dp=2, tp=2, pp=1, layers=1, hidden=16, seq=8)
    assert a.digest == b.digest


def test_llm_schedule_rejects_bad_params():
    with pytest.raises(ReplayError, match="dp must be"):
        llm_schedule(dp=0)
