"""Cross-shard messages and the analytic wire model that prices them.

A :class:`ShardMessage` is the *only* thing that crosses a shard
boundary: a packed, picklable tuple of primitives describing one
:class:`~repro.dataplane.descriptor.TransferDescriptor` whose destination
lives on another engine shard.  The triple ``(deliver_time, src_shard,
send_seq)`` is the deterministic merge key — the mailbox injects messages
in exactly this order, which is what makes the sharded run's delivery
schedule independent of how shards are grouped onto worker processes
(DESIGN.md §14).

The :class:`WireModel` prices the inter-node wire segment analytically
from the cluster spec's link classes (via
:func:`repro.hw.spec.generators.wire_path_classes`) instead of searching
the 512-GPU link graph — a shard only ever builds its own node's graph.
The generator tests pin the analytic numbers equal to the graph-searched
route on a small fabric, so both views of the wire agree.
"""

from __future__ import annotations

import hashlib
from typing import Dict, NamedTuple, Tuple

from repro.hw.spec.generators import wire_bandwidth, wire_latency
from repro.hw.spec.schema import MachineSpec


class ShardMessage(NamedTuple):
    """One cross-shard transfer, packed as pipe-safe primitives."""

    deliver: float     # absolute simulated arrival time at the dst shard
    src_shard: int
    seq: int           # per-source-shard monotone send counter
    dst_shard: int
    dst_gpu: int       # global GPU id of the destination endpoint
    src_gpu: int       # global GPU id of the source endpoint
    tag: Tuple         # matching key for Shard.recv (must be picklable)
    nbytes: int
    traffic_class: str
    name: str

    @property
    def merge_key(self) -> Tuple[float, int, int]:
        return (self.deliver, self.src_shard, self.seq)


class MessageDigest:
    """SHA-256 over the injected-message stream, in merge order.

    Message floats hash via ``float.hex()`` so the digest is exact, not
    repr-rounded.  Drivers feed each window's messages *merged across all
    destination queues* by ``merge_key``; because a window only injects
    messages with ``deliver <= horizon`` and anything routed later was
    sent after that horizon (so delivers strictly beyond it), the
    per-window concatenation equals the global sort by ``merge_key`` —
    the reference (single-heap) run digests its end-sorted message list
    and must produce the same bytes.
    """

    def __init__(self) -> None:
        self._h = hashlib.sha256()
        self.count = 0

    def update(self, msg: ShardMessage) -> None:
        self._h.update(
            "|".join((
                msg.deliver.hex(), str(msg.src_shard), str(msg.seq),
                str(msg.dst_shard), str(msg.dst_gpu), str(msg.src_gpu),
                repr(msg.tag), str(msg.nbytes), msg.traffic_class, msg.name,
            )).encode()
        )
        self.count += 1

    def hexdigest(self) -> str:
        return self._h.hexdigest()


class WireModel:
    """Analytic latency/bandwidth of the inter-node wire per GPU pair.

    Memoized by relationship class (the pair of nodes and the rail
    match), not by GPU pair — a 512-GPU halo touches thousands of pairs
    but only a handful of relationships.
    """

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self._cache: Dict[Tuple[int, int, bool], Tuple[float, float]] = {}

    def price(self, src_gpu: int, dst_gpu: int) -> Tuple[float, float]:
        """``(first_byte_latency_s, bottleneck_bandwidth_Bps)``."""
        spec = self.spec
        key = (
            spec.node_of(src_gpu),
            spec.node_of(dst_gpu),
            spec.rail_of(src_gpu) == spec.rail_of(dst_gpu),
        )
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = (
                wire_latency(spec, src_gpu, dst_gpu),
                wire_bandwidth(spec, src_gpu, dst_gpu),
            )
        return cached

    def deliver_time(self, now: float, src_gpu: int, dst_gpu: int, nbytes: int) -> float:
        """Arrival time of a message sent now — latency + serialization."""
        lat, bw = self.price(src_gpu, dst_gpu)
        return now + lat + nbytes / bw

    def lookahead(self) -> float:
        """The conservative window bound: min inter-node first-byte latency."""
        from repro.hw.spec.generators import min_internode_latency

        return min_internode_latency(self.spec)
