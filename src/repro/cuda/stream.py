"""CUDA streams: FIFO queues of device operations.

A stream owns a worker process that dequeues and executes operations in
order — exactly the paper's Section II-A description ("a FIFO queue of
operations executed in the order they are placed in the queue").  Host code
enqueues asynchronously and later blocks in ``Device.sync_h`` (modelling
``cudaStreamSynchronize``'s fixed 7.8 us cost, Fig 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.san import record
from repro.sim.events import Event
from repro.sim.resources import Channel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device


class StreamOp:
    """One queued operation: a generator factory plus its completion event."""

    __slots__ = ("run", "done", "label")

    def __init__(self, run: Callable[[], "object"], done: Event, label: str) -> None:
        self.run = run
        self.done = done
        self.label = label


class Stream:
    """A FIFO execution queue on one device."""

    def __init__(self, device: "Device", name: str = "stream") -> None:
        self.device = device
        self.engine = device.engine
        self.name = name
        self._ops: Channel[StreamOp] = Channel(self.engine, name=f"{name}.q")
        self._outstanding = 0  # enqueued but not yet completed
        self._drain_waiters: list[Event] = []
        self._worker = self.engine.process(self._run(), name=f"{name}.worker")

    @property
    def actor(self) -> tuple:
        """Sanitizer trace identity of this stream's worker."""
        return ("stream", self.name)

    # -- enqueue -----------------------------------------------------------------
    def enqueue(
        self, run: Callable[[], "object"], label: str, buffers: tuple = ()
    ) -> Event:
        """Queue a generator-factory op; returns its completion event.

        While a capture is open on this device the op is *recorded*, not
        executed (CUDA stream-capture semantics): recording returns a
        placeholder event that never fires, and ops landing on any other
        stream of the device raise — a cross-stream dependency the graph
        cannot represent.  ``buffers`` optionally names the endpoint
        buffers the op touches so graph replay can refuse freed ones.
        """
        capture = self.device.active_capture
        if capture is not None:
            from repro.dataplane.graph import GraphError

            if capture.stream is not self:
                raise GraphError(
                    f"op {label!r} enqueued on {self.name} while "
                    f"{capture.stream.name} is capturing: cross-stream "
                    "dependencies are not capturable"
                )
            capture.add(run, label, buffers)
            return Event(self.engine)
        done = Event(self.engine)
        # The enqueuer publishes its history to the worker (FIFO edge).
        record.release(("host", self.device.gpu_id), ("enq", id(done)))
        self._outstanding += 1
        self._ops.put(StreamOp(run, done, label))
        obs = self.engine.obs
        if obs is not None:
            obs.counter("stream", self.name, depth=self._outstanding)
        return done

    # -- capture / graph launch ---------------------------------------------------
    def begin_capture(self):
        """Open a capture: subsequent enqueues record into a TransferGraph."""
        from repro.dataplane.graph import GraphError, TransferGraph

        if self.device.active_capture is not None:
            raise GraphError(
                f"{self.name}: device {self.device.name} already has an open "
                f"capture on {self.device.active_capture.stream.name}"
            )
        graph = TransferGraph(self)
        self.device.active_capture = graph
        return graph

    def end_capture(self):
        """Close the capture; returns the sealed, launchable graph."""
        from repro.dataplane.graph import GraphError

        graph = self.device.active_capture
        if graph is None or graph.stream is not self:
            raise GraphError(f"{self.name}: no open capture to end")
        self.device.active_capture = None
        return graph.seal()

    def graph_launch(self, graph) -> Event:
        """Replay a sealed capture as one stream submission.

        The recorded ops execute sequentially — the exact order and
        simulated timing of enqueueing each one individually — but the
        stream machinery runs once per launch instead of once per op.
        Under ``REPRO_NO_GRAPHS`` (or any attached observer, which must
        see per-op events) the launch degrades to per-op enqueues; both
        paths return an event firing when the last op completed.
        """
        from repro.dataplane.graph import GRAPHS, GraphError, graphs_enabled

        if not graph.sealed:
            raise GraphError(
                f"{self.name}: graph is still capturing — call end_capture "
                "before launching"
            )
        if graph.stream.device is not self.device:
            raise GraphError(
                f"{self.name}: graph captured on device "
                f"{graph.stream.device.name} cannot launch on {self.device.name}"
            )
        graph.check_buffers()
        graph.launches += 1
        GRAPHS.launches += 1
        if (
            graphs_enabled()
            and self.engine.obs is None
            and self.engine.on_step is None
        ):
            engine, name = self.engine, self.name

            def replay():
                result = None
                for rec in graph.ops:
                    result = yield engine.process(
                        rec.make(), name=f"{name}.{rec.label}"
                    )
                return result

            return self.enqueue(replay, label=f"graph[{len(graph.ops)}]")
        last = None
        for rec in graph.ops:
            last = self.enqueue(rec.make, label=rec.label, buffers=rec.buffers)
        return last

    # -- draining ----------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no op is executing and the queue is empty."""
        return self._outstanding == 0

    def drained(self) -> Event:
        """Event firing when the stream has fully drained (possibly now)."""
        ev = Event(self.engine)
        if self.idle:
            ev.succeed(None)
        else:
            self._drain_waiters.append(ev)
        return ev

    def _notify_drained(self) -> None:
        if not self.idle:
            return
        record.release(self.actor, ("drain", self.name))
        if self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for ev in waiters:
                ev.succeed(None)

    # -- worker --------------------------------------------------------------------
    def _run(self):
        while True:
            op: StreamOp = yield self._ops.get()
            record.acquire(self.actor, ("enq", id(op.done)))
            obs = self.engine.obs
            t0 = self.engine.now
            try:
                result = yield self.engine.process(op.run(), name=f"{self.name}.{op.label}")
            except Exception as exc:  # noqa: BLE001 - fail just this op's waiters
                self._outstanding -= 1
                if op.done.callbacks is not None:
                    op.done.fail(exc)
                else:  # nobody listening: surface the crash
                    raise
                self._notify_drained()
                continue
            self._outstanding -= 1
            if obs is not None:
                obs.span("stream", op.label, self.actor, t0, self.engine.now)
                obs.counter("stream", self.name, depth=self._outstanding)
            record.release(self.actor, ("opdone", id(op.done)))
            op.done.succeed(result)
            self._notify_drained()
