"""The sweep grid and its content-addressed cache."""

import pytest

from repro.workload.replay import ReplayWorkload, parse_jsonl
from repro.workload.sweep import cell_key, run_sweep
from repro.workload.base import WorkloadError

SCHED = (
    '{"schema": "repro.workload.replay/1", "ranks": 2, "name": "tiny"}\n'
    '{"rank": 0, "op": "send", "peer": 1, "bytes": 4096, "tag": "a"}\n'
    '{"rank": 1, "op": "recv", "peer": 0, "tag": "a"}\n'
)


def _workload():
    return ReplayWorkload(parse_jsonl(SCHED, source="tiny.jsonl"))


def test_sweep_grid_and_cache_hits(tmp_path):
    cache = str(tmp_path / "cache")
    wl = _workload()
    kwargs = dict(
        workloads=[wl], machines=["gh200-1x4", "gh200-2x4"],
        policies=["single", "multi"], cache_dir=cache,
    )
    first = run_sweep(**kwargs)
    assert len(first["cells"]) == 4
    assert first["misses"] == 4 and first["hits"] == 0
    second = run_sweep(**kwargs)
    assert second["hits"] == 4 and second["misses"] == 0
    for a, b in zip(first["cells"], second["cells"]):
        assert a["key"] == b["key"]
        assert a["result"] == b["result"]
        assert not a["cached"] and b["cached"]


def test_sweep_no_cache(tmp_path):
    grid = run_sweep(
        workloads=[_workload()], machines=["gh200-1x4"], cache_dir=None,
    )
    assert grid["misses"] == 1 and grid["hits"] == 0


def test_cell_key_sensitivity():
    wl = _workload()
    base = cell_key("gh200-1x4", wl, "single")
    assert cell_key("gh200-2x4", wl, "single") != base       # machine axis
    assert cell_key("gh200-1x4", wl, "multi") != base        # policy axis
    assert cell_key("gh200-1x4", wl, None) != base           # default policy
    other = ReplayWorkload(parse_jsonl(SCHED.replace("4096", "8192"),
                                       source="tiny.jsonl"))
    assert cell_key("gh200-1x4", other, "single") != base    # content axis
    # Same content parsed from a different source string: same key.
    same = ReplayWorkload(parse_jsonl(SCHED, source="elsewhere.jsonl"))
    assert cell_key("gh200-1x4", same, "single") == base


def test_sweep_rejects_empty_axes():
    with pytest.raises(WorkloadError, match="at least one workload"):
        run_sweep(workloads=[], machines=["gh200-1x4"], cache_dir=None)
    with pytest.raises(WorkloadError, match="at least one machine"):
        run_sweep(workloads=[_workload()], machines=[], cache_dir=None)


def test_registry_names_resolve_in_sweep(tmp_path):
    grid = run_sweep(
        workloads=["striping"], machines=["gh200-2x4"],
        cache_dir=str(tmp_path / "cache"),
    )
    res = grid["cells"][0]["result"]
    assert res["workload"] == "striping"
    assert res["events_popped"] > 0
