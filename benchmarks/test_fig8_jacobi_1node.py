"""Fig 8: Jacobi solver GFLOP/s on four GH200 (2x2 decomposition).

Paper claim: the partitioned halo exchange gives a modest single-node
improvement (best 1.06x).  The paper does not state which copy mechanism
its Jacobi used; we report both and require the paper's 1.06x to fall
inside the [Progression-Engine, Kernel-Copy] envelope, with the
Kernel-Copy variant strictly winning.
"""

from conftest import run_exhibit, within

from repro.bench import figures

MULTIPLIERS = (1, 4, 16)


def test_fig8_jacobi_1node(benchmark):
    series = run_exhibit(benchmark, figures.fig8, multipliers=MULTIPLIERS, iters=120)

    for row in series.rows:
        assert row["kc_speedup"] > 1.0, (
            f"kernel-copy partitioned must beat traditional at multiplier {row['multiplier']}"
        )
        # The paper's 1.06x lies inside our copy-mode envelope.
        assert row["pe_speedup"] <= 1.06 <= row["kc_speedup"] + 0.5

    # GFLOP/s grows with problem size for every variant.
    for col in ("traditional", "partitioned_pe", "partitioned_kc"):
        vals = series.column(col)
        assert all(b > a for a, b in zip(vals, vals[1:])), f"{col} must scale with size"

    within(series.rows[0]["kc_speedup"], 1.0, 2.0, "KC speedup at m=1")
    # The PE variant lands near the paper's modest single-node figure.
    within(series.rows[0]["pe_speedup"], 0.85, 1.2, "PE speedup at m=1 (paper 1.06x)")
