"""Engine fundamentals: time, ordering, run modes, determinism."""

import pytest

from repro.sim.engine import EmptySchedule, Engine
from repro.sim.events import Event, Timeout


def test_time_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_time(engine):
    done = []

    def proc():
        yield engine.timeout(1.5)
        done.append(engine.now)

    engine.run(engine.process(proc()))
    assert done == [1.5]


def test_zero_timeout_runs_same_time(engine):
    def proc():
        yield engine.timeout(0.0)
        return engine.now

    assert engine.run(engine.process(proc())) == 0.0


def test_negative_timeout_rejected(engine):
    with pytest.raises(ValueError):
        engine.timeout(-1.0)


def test_run_until_time(engine):
    ticks = []

    def proc():
        while True:
            yield engine.timeout(1.0)
            ticks.append(engine.now)

    engine.process(proc())
    engine.run(until=3.5)
    assert ticks == [1.0, 2.0, 3.0]
    assert engine.now == 3.5


def test_run_to_past_rejected(engine):
    engine.run(until=5.0)
    with pytest.raises(ValueError):
        engine.run(until=1.0)


def test_run_until_event_returns_value(engine):
    ev = engine.event()

    def setter():
        yield engine.timeout(2.0)
        ev.succeed("payload")

    engine.process(setter())
    assert engine.run(ev) == "payload"
    assert engine.now == 2.0


def test_run_until_unreachable_event_raises(engine):
    ev = engine.event()
    with pytest.raises(EmptySchedule):
        engine.run(ev)


def test_run_exhausts_all_events(engine):
    seen = []

    def proc(delay):
        yield engine.timeout(delay)
        seen.append(delay)

    for d in (3.0, 1.0, 2.0):
        engine.process(proc(d))
    engine.run()
    assert seen == [1.0, 2.0, 3.0]


def test_same_time_fifo_order(engine):
    """Events scheduled for the same instant fire in insertion order."""
    order = []

    def proc(tag):
        yield engine.timeout(1.0)
        order.append(tag)

    for tag in range(10):
        engine.process(proc(tag))
    engine.run()
    assert order == list(range(10))


def test_peek(engine):
    assert engine.peek() == float("inf")
    engine.timeout(4.0)
    assert engine.peek() == 4.0


def test_peek_inf_after_exhaustion(engine):
    """Exhausting the schedule returns peek() to +inf, not a stale head."""
    engine.timeout(4.0)
    engine.run()
    assert engine.now == 4.0
    assert engine.peek() == float("inf")


def test_run_horizon_past_exhaustion_advances_now(engine):
    """run(until=T) past the last event still lands now exactly on T."""
    done = []

    def proc():
        yield engine.timeout(1.0)
        done.append(engine.now)

    engine.process(proc())
    engine.run(until=10.0)
    assert done == [1.0]
    assert engine.now == 10.0
    # And again with nothing scheduled at all.
    engine.run(until=12.5)
    assert engine.now == 12.5


def test_cancelled_entries_invisible_to_peek(engine):
    t1 = engine.timeout(1.0)
    engine.timeout(2.0)
    assert engine.peek() == 1.0
    assert t1.cancel() is True
    assert engine.peek() == 2.0
    assert engine.events_cancelled == 1


def test_cancelled_timeout_never_fires(engine):
    fired = []
    t1 = engine.timeout(1.0)
    t1.add_callback(lambda ev: fired.append("cancelled"))
    engine.timeout(2.0).add_callback(lambda ev: fired.append("kept"))
    t1.cancel()
    engine.run()
    assert fired == ["kept"]
    assert engine.now == 2.0


def test_cancel_is_idempotent_and_rejects_processed(engine):
    t = engine.timeout(1.0)
    engine.run()
    assert t.cancel() is False  # already processed
    ev = engine.event()
    assert ev.cancel() is False  # never scheduled
    t2 = engine.timeout(1.0)
    assert t2.cancel() is True
    assert t2.cancel() is False  # second cancel is a no-op


def test_timeout_at_schedules_absolute(engine):
    engine.timeout(1.0)
    engine.run()
    ev = engine.timeout_at(3.5, value="abs")
    got = engine.run(ev)
    assert got == "abs"
    assert engine.now == 3.5


def test_timeout_at_in_the_past_rejected(engine):
    engine.timeout(2.0)
    engine.run()
    with pytest.raises(ValueError):
        engine.timeout_at(1.0)


def test_pooled_timeout_recycled(engine):
    """A fired pooled timeout returns to the free-list and is reborn."""
    t1 = engine.pooled_timeout(1.0)
    engine.run()
    t2 = engine.pooled_timeout(2.0)
    assert t2 is t1  # same object, recycled
    got = []
    t2.add_callback(lambda ev: got.append(engine.now))
    engine.run()
    assert got == [3.0]


def test_determinism_two_identical_runs():
    """Identical programs produce identical event traces."""

    def build():
        eng = Engine()
        log = []

        def worker(k):
            for i in range(3):
                yield eng.timeout(0.5 * (k + 1))
                log.append((eng.now, k, i))

        for k in range(4):
            eng.process(worker(k))
        eng.run()
        return log

    assert build() == build()


def test_trace_log_shim_still_works_but_warns():
    with pytest.warns(DeprecationWarning, match="Engine.trace=True. is deprecated"):
        eng = Engine(trace=True)

    def proc():
        eng.trace("begin")
        yield eng.timeout(1.0)
        eng.trace("end")

    eng.run(eng.process(proc()))
    assert eng.trace_log == [(0.0, "begin"), (1.0, "end")]


def test_trace_disabled_by_default(engine):
    engine.trace("ignored")
    assert engine.trace_log == []
    assert engine.obs is None and not engine.trace_enabled


def test_trace_reaches_bus_subscribers():
    """Engine.trace is an ordinary obs instant: any subscriber sees it."""
    from repro.obs import Bus

    eng = Engine()
    seen = []

    class Sub:
        def on_event(self, ev):
            seen.append((ev.cat, ev.name, ev.t0, ev.get("msg")))

    bus = Bus()
    bus.subscribe(Sub())
    bus.attach(eng)
    eng.trace("hello")
    assert seen == [("engine", "trace", 0.0, "hello")]
