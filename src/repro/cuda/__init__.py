"""CUDA-like GPU simulator.

Models the pieces of the CUDA execution model that the paper's results
hinge on:

* asynchronous kernel launches into FIFO **streams** and the fixed cost of
  ``cudaStreamSynchronize`` (the paper's Fig 2 motivation);
* the **grid/block/warp/thread** hierarchy with an SM wave scheduler and an
  HBM-bandwidth-bound block cost model;
* **device-side actions**: computing, writing flags into pinned host memory
  (serialized over NVLink-C2C), global-memory atomics, ``__syncthreads()``,
  and intra-kernel load/store copies over NVLink — everything the paper's
  ``MPIX_Pready`` device bindings are built from;
* **CUDA IPC** memory handles used by the Kernel-Copy path.

Two kernel flavours trade fidelity against simulation cost (documented in
DESIGN.md): :class:`~repro.cuda.kernel.BlockKernel` runs one coroutine per
block (exact; for small grids and semantics tests), while
:class:`~repro.cuda.kernel.UniformKernel` uses an analytic wave plan with a
per-wave bulk hook (for the paper's 128K-block sweeps).
"""

from repro.cuda.timing import CostModel, WorkSpec
from repro.cuda.kernel import BlockKernel, UniformKernel, Wave
from repro.cuda.stream import Stream
from repro.cuda.device import Device
from repro.cuda.ipc import IpcMemHandle

__all__ = [
    "BlockKernel",
    "CostModel",
    "Device",
    "IpcMemHandle",
    "Stream",
    "UniformKernel",
    "Wave",
    "WorkSpec",
]
