"""Device bindings: MPIX_Pready / MPIX_Parrived callable from kernels.

Exact (per-block) forms for :class:`~repro.cuda.kernel.BlockKernel` bodies —
each returns a process event the body may ``yield`` (wait) or post::

    def body(blk):
        yield blk.compute(work)
        yield pready_block(blk, preq)

and the bulk form :func:`pready_wave` for
:class:`~repro.cuda.kernel.UniformKernel` wave hooks (O(1) events per wave
regardless of grid size).

Signal aggregation (paper Section IV-A4, Fig 3):

* ``pready_thread`` — every thread stores a flag into pinned host memory
  (the MPI-ACX-style baseline): ``block_threads`` serialized C2C writes;
* ``pready_warp`` — ``__shfl_sync`` within each warp, lane 0 writes:
  ``ceil(block_threads/32)`` writes;
* ``pready_block`` — ``__syncthreads()``, thread 0 writes once; with
  multi-block transport partitions, global-memory counters aggregate and
  only the threshold-crossing block writes to the host.

In Kernel-Copy mode the threshold-crossing block also performs the direct
NVLink store of the transport partition through the ``rkey_ptr``-mapped
remote buffer before signalling the host for the completion path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.cuda.devapi import BlockCtx, KernelCtx
from repro.cuda.kernel import Wave
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.partitioned.aggregation import SignalMode
from repro.partitioned.prequest import CopyMode, Prequest
from repro.san import record

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.partitioned.p2p import PrecvRequest


def _check_device_call(blk_device, preq: Prequest, actor=None) -> None:
    if preq.freed:
        msg = "device MPIX_Pready on a freed MPIX_Prequest"
        record.guard("pready-freed", actor, msg)
        raise MpiStateError(msg)
    if not preq.sreq.active:
        msg = "device MPIX_Pready outside an active epoch"
        record.guard("pready-inactive", actor, msg)
        raise MpiStateError(msg)
    if blk_device is not preq.device:
        msg = "MPIX_Prequest was created for a different device than the kernel runs on"
        record.guard("pready-wrong-device", actor, msg)
        raise MpiUsageError(msg)


# --------------------------------------------------------------------------
# exact per-block bindings (BlockKernel bodies)
# --------------------------------------------------------------------------

def _signal_then_maybe_copy(blk: BlockCtx, preq: Prequest, host_writes: int):
    """Shared tail: gmem aggregation, optional kernel copy, host signal."""
    tp = preq.agg.tp_of_block(blk.block_id)
    count = yield blk.atomic_add(preq.gmem_counters[tp])
    crossing = count == preq.agg.gmem_threshold()
    if preq.mode is CopyMode.KERNEL_COPY:
        if crossing:
            # The crossing block stores the whole transport partition over
            # NVLink.  Stores are *posted*: the block proceeds to raise
            # the host completion signal immediately, and the progression
            # engine gates the flag-only completion on the copy event.
            preq.kc_copy_events[tp] = blk.copy(preq.src_slice(tp), preq.mapped_slice(tp))
            yield blk.write_host_flag(preq.host_signals[tp])
    else:
        if preq.agg.signal_mode is SignalMode.BLOCK:
            if crossing:
                yield blk.write_host_flags(1, preq.host_signals[tp])
        else:
            # Thread/warp modes: every actor writes (no cross-block gating).
            yield blk.write_host_flags(host_writes, preq.host_signals[tp], amount=host_writes)


def _mark_block_pready(blk: BlockCtx, preq: Prequest) -> None:
    record.mark(
        "pready",
        actor=blk.actor,
        preq=record.ident(preq),
        epoch=preq.sreq.epoch,
        block=blk.block_id,
        tp=preq.agg.tp_of_block(blk.block_id),
        mode=preq.agg.signal_mode.value,
    )


def pready_thread(blk: BlockCtx, preq: Prequest):
    """MPIX_Pready_thread: each of the block's threads signals the host."""
    _check_device_call(blk.device, preq, actor=blk.actor)
    if preq.agg.signal_mode is not SignalMode.THREAD:
        raise MpiUsageError("prequest was not created with SignalMode.THREAD")
    _mark_block_pready(blk, preq)

    def proc() -> Generator:
        yield from _signal_then_maybe_copy(blk, preq, blk.block_threads)

    return blk.engine.process(proc(), name=f"pready_t.b{blk.block_id}")


def pready_warp(blk: BlockCtx, preq: Prequest):
    """MPIX_Pready_warp: warps __shfl_sync-reduce, lane 0 signals."""
    _check_device_call(blk.device, preq, actor=blk.actor)
    if preq.agg.signal_mode is not SignalMode.WARP:
        raise MpiUsageError("prequest was not created with SignalMode.WARP")
    _mark_block_pready(blk, preq)

    def proc() -> Generator:
        # Intra-warp shuffle reduction cost (cheap, on-SM).
        yield blk.engine.timeout(blk.device.cost.syncthreads_cost / 2)
        yield from _signal_then_maybe_copy(blk, preq, preq.agg.warps_per_block)

    return blk.engine.process(proc(), name=f"pready_w.b{blk.block_id}")


def pready_block(blk: BlockCtx, preq: Prequest):
    """MPIX_Pready_block: __syncthreads(), thread 0 signals once."""
    _check_device_call(blk.device, preq, actor=blk.actor)
    if preq.agg.signal_mode is not SignalMode.BLOCK:
        raise MpiUsageError("prequest was not created with SignalMode.BLOCK")
    _mark_block_pready(blk, preq)

    def proc() -> Generator:
        yield blk.syncthreads()
        yield from _signal_then_maybe_copy(blk, preq, 1)

    return blk.engine.process(proc(), name=f"pready_b.b{blk.block_id}")


def pready(blk: BlockCtx, preq: Prequest):
    """Generic device MPIX_Pready: dispatch on the prequest's signal mode."""
    mode = preq.agg.signal_mode
    if mode is SignalMode.THREAD:
        return pready_thread(blk, preq)
    if mode is SignalMode.WARP:
        return pready_warp(blk, preq)
    return pready_block(blk, preq)


def parrived_device(blk: BlockCtx, rreq: "PrecvRequest", partition: int):
    """Device MPIX_Parrived: spin on the device-visible mirror flag.

    The receive-side completion flags live in pinned host memory; the
    device polls a global-memory mirror that the host refreshes (paper:
    "we issue a memory copy to the device in MPI_Wait as partitions
    arrive").  We charge that H2D visibility latency on the wait.
    """
    flag = rreq.arrived_flags[partition]

    def proc() -> Generator:
        if not flag.is_set:
            yield flag.wait()
        yield blk.engine.timeout(blk.device.fabric.config.params.host_to_dev_flag)
        # Import the sender's published history, then record the read this
        # call licenses (the partition's bytes are now safe to consume).
        record.acquire(blk.actor, ("arr", rreq.key, partition))
        record.access(
            blk.actor,
            rreq.buf.partition(partition, rreq.partitions),
            write=False,
            note="parrived",
        )
        return True

    return blk.engine.process(proc(), name=f"parrived.b{blk.block_id}")


# --------------------------------------------------------------------------
# bulk binding (UniformKernel wave hooks)
# --------------------------------------------------------------------------

def pready_wave(kctx: KernelCtx, preq: Prequest, wave: Wave) -> None:
    """Apply a whole wave's MPIX_Pready effects in O(transport partitions).

    Equivalent to every block in ``wave.blocks`` executing the exact
    binding matching ``preq.agg.signal_mode``: global counters advance by
    the per-partition block counts, crossings trigger the kernel copy
    and/or host signal, and thread/warp modes charge their full write
    storms (serialized on the C2C link).
    """
    _check_device_call(kctx.device, preq, actor=kctx.actor)
    agg = preq.agg
    # Group the wave's blocks by transport partition (contiguous ranges).
    first_tp = agg.tp_of_block(wave.blocks[0])
    last_tp = agg.tp_of_block(wave.blocks[-1])
    for tp in range(first_tp, last_tp + 1):
        lo = max(wave.blocks[0], tp * agg.blocks_per_partition)
        hi = min(wave.blocks[-1] + 1, (tp + 1) * agg.blocks_per_partition)
        n_blocks = hi - lo
        if n_blocks <= 0:
            continue
        record.mark(
            "pready",
            actor=kctx.actor,
            preq=record.ident(preq),
            epoch=preq.sreq.epoch,
            blocks=(lo, hi),
            tp=tp,
            mode=agg.signal_mode.value,
        )
        counter = preq.gmem_counters[tp]
        before = counter.value
        kctx.bulk_atomic_adds(counter, n_blocks)
        crossed = before < agg.gmem_threshold() <= before + n_blocks

        if preq.mode is CopyMode.KERNEL_COPY:
            if crossed:
                kctx.engine.process(
                    _kc_copy_then_signal(kctx, preq, tp), name=f"kc_tp{tp}"
                )
        elif agg.signal_mode is SignalMode.BLOCK:
            if crossed:
                kctx.bulk_host_flag_writes(1, preq.host_signals[tp])
        else:
            per_block = agg.host_writes_per_block()
            kctx.bulk_host_flag_writes(
                n_blocks * per_block, preq.host_signals[tp], amount=n_blocks * per_block
            )


def _kc_copy_then_signal(kctx: KernelCtx, preq: Prequest, tp: int) -> Generator:
    # Post the direct store; signal the host concurrently (the progression
    # engine gates the completion flag on the copy event).
    preq.kc_copy_events[tp] = kctx.copy(preq.src_slice(tp), preq.mapped_slice(tp))
    yield kctx.bulk_host_flag_writes(1, preq.host_signals[tp])
