"""The DES coroutine effect checker (effect-illegal-yield / leaked-waiter)."""

import textwrap

from repro.san.cli import sanitize_script

from .conftest import FIXTURES, rules_of

ONLY = ["effect-illegal-yield", "effect-leaked-waiter"]


def src(body):
    return {"m.py": textwrap.dedent(body)}


# -- effect-illegal-yield ----------------------------------------------------

def test_literal_yield_in_driven_process_flagged(analyze):
    findings = analyze(src("""
        def worker(engine):
            yield "not an event"

        def main(engine):
            engine.process(worker(engine))
    """), only=ONLY)
    assert rules_of(findings) == ["effect-illegal-yield"]
    assert "str literal" in findings[0].message


def test_negative_delay_flagged(analyze):
    findings = analyze(src("""
        def worker(engine):
            yield -1.5

        def main(engine):
            engine.process(worker(engine))
    """), only=ONLY)
    assert rules_of(findings) == ["effect-illegal-yield"]
    assert "negative delay" in findings[0].message


def test_yield_reached_through_helper_closure(analyze):
    # the illegal yield hides two `yield from` hops below the root
    findings = analyze(src("""
        def deepest(engine):
            yield {"payload": 1}

        def middle(engine):
            yield from deepest(engine)

        def worker(engine):
            yield from middle(engine)

        def main(engine):
            engine.process(worker(engine))
    """), only=ONLY)
    assert rules_of(findings) == ["effect-illegal-yield"]
    assert findings[0].function == "deepest"


def test_yield_of_generator_call_suggests_yield_from(analyze):
    findings = analyze(src("""
        def steps(engine):
            yield engine.timeout(1)

        def worker(engine):
            yield steps(engine)

        def main(engine):
            engine.process(worker(engine))
    """), only=ONLY)
    assert rules_of(findings) == ["effect-illegal-yield"]
    assert "yield from" in findings[0].message


def test_yield_from_non_generator_flagged(analyze):
    findings = analyze(src("""
        def helper(engine):
            return engine.timeout(1)

        def worker(engine):
            yield from helper(engine)

        def main(engine):
            engine.process(worker(engine))
    """), only=ONLY)
    assert rules_of(findings) == ["effect-illegal-yield"]


def test_legal_yields_and_undriven_generators_clean(analyze):
    findings = analyze(src("""
        def worker(engine, ev):
            yield               # bare: reschedule immediately
            yield None
            yield 0
            yield 2.5
            yield ev
            yield engine.timeout(3)

        def main(engine, ev):
            engine.process(worker(engine, ev))

        def string_iterator():
            yield "fine"        # never handed to the engine: not a process
    """), only=ONLY)
    assert findings == []


def test_helper_with_mixed_returns_not_flagged(analyze):
    findings = analyze(src("""
        def delay(fast):
            if fast:
                return "oops"
            return 1.0

        def worker(engine):
            yield delay(True)

        def main(engine):
            engine.process(worker(engine))
    """), only=ONLY)
    assert findings == []       # one return may be legal: unknown, stay quiet


# -- effect-leaked-waiter ----------------------------------------------------

def test_leaked_waiter_on_early_return_path(analyze):
    findings = analyze(src("""
        def worker(engine, flag):
            ev = Event(engine)
            ev.add_callback(lambda e: None)
            if flag:
                return 0
            yield ev
    """), only=ONLY)
    assert rules_of(findings) == ["effect-leaked-waiter"]
    assert findings[0].line == 3


def test_waiter_yielded_on_every_path_clean(analyze):
    findings = analyze(src("""
        def worker(engine, flag):
            ev = Event(engine)
            ev.add_callback(lambda e: None)
            if flag:
                yield ev
                return 0
            yield ev
    """), only=ONLY)
    assert findings == []


def test_waiter_stored_or_handed_off_counts_as_consumed(analyze):
    findings = analyze(src("""
        class Q:
            def park(self, engine, sink):
                ev = engine.event()
                ev.add_callback(self.wake)
                self.pending = ev

            def hand_off(self, engine, sink):
                ev = engine.event()
                ev.add_callback(self.wake)
                sink.append(ev)
    """), only=ONLY)
    assert findings == []


def test_unsubscribed_event_not_a_waiter(analyze):
    findings = analyze(src("""
        def worker(engine, flag):
            ev = Event(engine)
            if flag:
                return 0
            yield ev
    """), only=ONLY)
    assert findings == []


# -- the seeded fixture: static catches what the dynamic run cannot ----------

def test_fixture_bugs_found_statically(analyze_path):
    findings = analyze_path(FIXTURES / "effects_bug.py", only=ONLY)
    assert rules_of(findings) == ONLY
    lines = {f.rule: f.line for f in findings}
    assert lines["effect-illegal-yield"] == 29
    assert lines["effect-leaked-waiter"] == 30


def test_fixture_is_clean_under_dynamic_sanitizer():
    # The buggy branches are never taken at run time, so the trace-based
    # sanitizer reports nothing — the whole point of the static pass.
    report = sanitize_script(FIXTURES / "effects_bug.py")
    assert report.ok, report.render()
