"""The generic partitioned-collective schedule.

A :class:`Schedule` is rank-local: each rank builds its own view of the
same global algorithm (like MPI neighborhood collectives, which inspired
the design — paper Section IV-B1).  It consists of steps

    ``S_i = (I, R, op, O, A)``

where ``I``/``O`` are incoming/outgoing neighbour ranks, ``R`` is the
chunk offset the step *sends*, ``A`` the chunk offset it *receives into*,
and ``op`` the reduction applied to arriving data (or NOP for pure data
movement).  Each user partition's data is divided into ``n_chunks`` equal
chunks indexed by R/A; the ring allreduce uses ``n_chunks = P``, the tree
broadcast ``n_chunks = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MpiOp, NOP

OpOrNop = Union[MpiOp, type(NOP)]


@dataclass(frozen=True)
class Step:
    """One schedule step ``(I, R, op, O, A)``."""

    incoming: Tuple[int, ...]
    send_chunk: int            # R: chunk offset sent this step
    op: object                 # MpiOp or NOP
    outgoing: Tuple[int, ...]
    recv_chunk: int            # A: chunk offset received this step

    def __post_init__(self) -> None:
        if self.incoming and self.recv_chunk < 0:
            raise MpiUsageError("step with incoming neighbours needs recv_chunk >= 0")
        if self.outgoing and self.send_chunk < 0:
            raise MpiUsageError("step with outgoing neighbours needs send_chunk >= 0")


@dataclass(frozen=True)
class Schedule:
    """A rank's full schedule plus chunk geometry.

    ``requires_local_contribution`` marks collectives whose sends carry
    this rank's own data (reduce/allreduce): the per-partition state
    machine must wait for the application's ``MPI_Pready`` before its
    first action.  Data-movement-only ranks (bcast forwarders/leaves)
    progress on arrivals alone.
    """

    rank: int
    n_ranks: int
    n_chunks: int
    steps: Tuple[Step, ...]
    name: str = "schedule"
    requires_local_contribution: bool = True

    def __post_init__(self) -> None:
        if self.n_chunks < 1:
            raise MpiUsageError("n_chunks must be >= 1")
        for i, s in enumerate(self.steps):
            for nbr in s.incoming + s.outgoing:
                if not 0 <= nbr < self.n_ranks:
                    raise MpiUsageError(
                        f"step {i}: neighbour {nbr} out of range (P={self.n_ranks})"
                    )
                if nbr == self.rank:
                    raise MpiUsageError(f"step {i}: self-neighbour")
            if s.outgoing and not 0 <= s.send_chunk < self.n_chunks:
                raise MpiUsageError(f"step {i}: send chunk {s.send_chunk} out of range")
            if s.incoming and not 0 <= s.recv_chunk < self.n_chunks:
                raise MpiUsageError(f"step {i}: recv chunk {s.recv_chunk} out of range")

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    # -- neighbour sets (channel creation) ------------------------------------
    def all_outgoing(self) -> List[int]:
        """Distinct outgoing neighbours in first-use order."""
        seen: List[int] = []
        for s in self.steps:
            for o in s.outgoing:
                if o not in seen:
                    seen.append(o)
        return seen

    def all_incoming(self) -> List[int]:
        seen: List[int] = []
        for s in self.steps:
            for i in s.incoming:
                if i not in seen:
                    seen.append(i)
        return seen

    def sends_to(self, neighbour: int) -> int:
        """Total steps that send to ``neighbour`` (wire partitions needed)."""
        return sum(1 for s in self.steps if neighbour in s.outgoing)

    def recvs_from(self, neighbour: int) -> int:
        return sum(1 for s in self.steps if neighbour in s.incoming)
