"""Determinism lint: order and seed hazards the engine contract forbids.

The simulator's reproducibility claim (``sim/engine.py``: identical
``(time, priority, seq)`` pop order for identical programs) only holds
when no scheduling-relevant value depends on Python's *unordered*
containers or ambient randomness.  Set iteration order varies with
``PYTHONHASHSEED`` for str/bytes elements; ``set.pop()`` is explicitly
arbitrary; float sums differ under re-ordering; ``id()`` changes run to
run.  These rules flag the syntactic shapes where that nondeterminism
can leak into results:

``det-unordered-iter``
    Iterating a set (``for``/comprehension), materializing one in order
    (``list``/``tuple``/``enumerate``/``iter``), taking ``min``/``max``
    of one (tie-breaks are order-dependent), or ``set.pop()``.
    ``sorted(...)`` over a set is the sanctioned fix and never flagged.
``det-unseeded-random``
    RNG constructed without a seed: ``random.Random()``,
    ``default_rng()``, ``RandomState()``.
``det-id-order``
    ``id(...)`` used as (part of) an ordering key.
``det-float-accum``
    ``sum(...)`` over a set, or ``+=`` accumulation inside a loop over a
    set — float accumulation order follows the unordered iteration.

Sets are recognized structurally: literals, set comprehensions,
``set(...)``/``frozenset(...)`` calls, and local names assigned from
one.  Everything else is unknown and never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Set

from repro.analyze.model import FunctionInfo, ModuleInfo, Project, dotted_name, owned_nodes
from repro.analyze.rules import Finding, Pass, Rule

FAMILY = "determinism"

UNORDERED_ITER = "det-unordered-iter"
UNSEEDED_RANDOM = "det-unseeded-random"
ID_ORDER = "det-id-order"
FLOAT_ACCUM = "det-float-accum"

RULES: Dict[str, Rule] = {
    UNORDERED_ITER: Rule(
        UNORDERED_ITER, FAMILY,
        "iteration order of a set is hash-seed dependent — sort it "
        "(sorted(...)) before order can reach scheduling or routing",
    ),
    UNSEEDED_RANDOM: Rule(
        UNSEEDED_RANDOM, FAMILY,
        "RNG constructed without an explicit seed breaks run-to-run "
        "reproducibility",
    ),
    ID_ORDER: Rule(
        ID_ORDER, FAMILY,
        "id() as an ordering key varies across runs — order by a stable "
        "field instead",
    ),
    FLOAT_ACCUM: Rule(
        FLOAT_ACCUM, FAMILY,
        "accumulating floats in set-iteration order makes the total "
        "hash-seed dependent — sort the operands first",
    ),
}

#: Functions that materialize their argument's iteration order.
_ORDER_SINKS = {"list", "tuple", "enumerate", "iter", "min", "max"}
_RNG_CTORS = {"Random", "RandomState", "default_rng"}
_SORT_CALLS = {"sorted", "min", "max"}


def _set_vars(root: ast.AST) -> Set[str]:
    """Local names assigned (only) from set-constructing expressions."""
    names: Set[str] = set()
    for node in owned_nodes(root):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            if _is_set_expr(node.value, frozenset()):
                names.add(node.targets[0].id)
    return names


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # set algebra keeps set-ness when either side is a known set
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    return False


def _scan_scope(
    root: ast.AST, mod: ModuleInfo, qualname: str, enabled: Set[str]
) -> List[Finding]:
    set_vars = _set_vars(root)
    found: List[Finding] = []

    def flag(rule: str, node: ast.AST, msg: str) -> None:
        if rule in enabled:
            found.append(Finding(rule, mod.path, node.lineno, msg, qualname))

    for node in owned_nodes(root):
        if isinstance(node, ast.For) and _is_set_expr(node.iter, set_vars):
            flag(UNORDERED_ITER, node.iter,
                 "for-loop over a set iterates in hash order")
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            ordered = not isinstance(node, (ast.SetComp, ast.DictComp))
            for comp in node.generators:
                if ordered and _is_set_expr(comp.iter, set_vars):
                    flag(UNORDERED_ITER, comp.iter,
                         "comprehension over a set iterates in hash order")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if (
                    func.id in _ORDER_SINKS
                    and node.args
                    and _is_set_expr(node.args[0], set_vars)
                ):
                    what = (
                        "tie-breaks in hash order"
                        if func.id in ("min", "max")
                        else "materializes hash order"
                    )
                    flag(UNORDERED_ITER, node,
                         f"{func.id}() over a set {what}")
                elif (
                    func.id == "sum"
                    and node.args
                    and _sums_a_set(node.args[0], set_vars)
                ):
                    flag(FLOAT_ACCUM, node,
                         "sum() over a set accumulates in hash order")
                elif func.id in _SORT_CALLS or func.id == "id":
                    pass
            if _is_rng_ctor(func) and not node.args and not node.keywords:
                flag(UNSEEDED_RANDOM, node,
                     f"{dotted_name(func) or 'RNG'}() without a seed")
            _scan_id_order(node, flag)
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and _is_set_expr(func.value, set_vars)
            ):
                flag(UNORDERED_ITER, node,
                     "set.pop() removes a hash-order-arbitrary element")
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            loop = _enclosing_set_loop(root, node, set_vars)
            if loop is not None:
                flag(FLOAT_ACCUM, node,
                     "accumulation inside a loop over a set follows hash order")
    return found


def _sums_a_set(arg: ast.AST, set_vars: Set[str]) -> bool:
    if _is_set_expr(arg, set_vars):
        return True
    if isinstance(arg, ast.GeneratorExp):
        return any(_is_set_expr(c.iter, set_vars) for c in arg.generators)
    return False


def _is_rng_ctor(func: ast.AST) -> bool:
    if isinstance(func, ast.Name):
        return func.id in _RNG_CTORS
    return isinstance(func, ast.Attribute) and func.attr in _RNG_CTORS


def _scan_id_order(call: ast.Call, flag) -> None:
    """id() feeding an ordering construct: sorted/min/max/.sort keys."""
    is_sorter = (
        isinstance(call.func, ast.Name) and call.func.id in _SORT_CALLS
    ) or (isinstance(call.func, ast.Attribute) and call.func.attr == "sort")
    if not is_sorter:
        return
    probes = list(call.args) + [kw.value for kw in call.keywords]
    for probe in probes:
        for sub in ast.walk(probe):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                flag(ID_ORDER, sub, "id() used as an ordering key")
                return
            if isinstance(sub, ast.Name) and sub.id == "id":
                flag(ID_ORDER, sub, "id used as an ordering key function")
                return


def _enclosing_set_loop(root, target: ast.AST, set_vars: Set[str]):
    """The nearest for-over-a-set that lexically contains ``target``."""
    best = None
    for node in owned_nodes(root):
        if isinstance(node, ast.For) and _is_set_expr(node.iter, set_vars):
            for sub in ast.walk(node):
                if sub is target:
                    best = node
                    break
    return best


def run(project: Project, enabled: Sequence[str]) -> List[Finding]:
    enabled_set = set(enabled)
    findings: List[Finding] = []
    for mod in project.modules:
        findings += _scan_scope(mod.tree, mod, "", enabled_set)
        for fi in mod.functions:
            findings += _scan_scope(fi.node, mod, fi.qualname, enabled_set)
    return findings


PASS = Pass(family=FAMILY, rules=RULES, run=run)
