"""The shared project model every analyzer pass consumes.

One :class:`Project` holds the parsed AST of every module under the
analyzed roots, a per-module symbol table (local defs + ``from X import
Y`` edges into other project modules), the set of functions (including
methods and nested defs) with generator-ness precomputed, and a
best-effort interprocedural call graph.

Resolution is deliberately *syntactic*: a bare-name call resolves to a
module-level function of the same module or to a name imported from
another analyzed module; ``self.m(...)`` / ``cls.m(...)`` resolves to a
method of the lexically enclosing class.  Anything else (duck-typed
attributes, inheritance, higher-order plumbing) resolves to ``None`` and
the passes treat it as unknown — the framework over-approximates only
where a rule explicitly chooses to (DESIGN.md §13).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


def owned_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Every AST node belonging to ``root``'s own scope.

    Nested ``def``/``async def``/``lambda`` nodes are *yielded* (so a
    caller can see that they exist) but not *entered* — their bodies
    belong to their own :class:`FunctionInfo`.  Comprehension scopes are
    treated as part of the owner (close enough for every rule we run).
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain rooted at a Name, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FunctionInfo:
    """One function, method, or nested def in the project."""

    module: "ModuleInfo"
    qualname: str                     # "fn", "Class.method", "fn.<locals>.inner"
    node: ast.AST                     # FunctionDef | AsyncFunctionDef
    cls: Optional[str]                # lexically enclosing class, if a method
    is_generator: bool = False
    _cfg: Optional[object] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def path(self) -> str:
        return self.module.path

    def owned(self) -> Iterator[ast.AST]:
        return owned_nodes(self.node)

    @property
    def cfg(self):
        """The function's statement-level CFG, built on first use."""
        if self._cfg is None:
            from repro.analyze.cfg import build_cfg

            self._cfg = build_cfg(self.node)
        return self._cfg

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.module.name}:{self.qualname}>"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str                          # as given on the command line / root walk
    name: str                          # dotted module name ("repro.sim.engine")
    tree: ast.Module
    source: str
    functions: List[FunctionInfo] = field(default_factory=list)
    #: module-level function defs + imported names:
    #:   name -> ("func", FunctionInfo) | ("import", module_dotted, orig_name)
    symbols: Dict[str, Tuple] = field(default_factory=dict)
    #: (class name, method name) -> FunctionInfo, for directly-nested methods
    methods: Dict[Tuple[str, str], FunctionInfo] = field(default_factory=dict)
    #: line -> None (suppress all) | set of rule ids (see repro.analyze.suppress)
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def __hash__(self) -> int:
        return id(self)


class Project:
    """Module table + symbol tables + call graph over the analyzed roots."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        self.by_name: Dict[str, ModuleInfo] = {}
        self.functions: List[FunctionInfo] = []
        self._call_graph: Optional[Dict[FunctionInfo, Set[FunctionInfo]]] = None

    # -- loading -------------------------------------------------------------
    @classmethod
    def load(cls, paths: Iterable[Path]) -> "Project":
        """Parse every ``.py`` file under the given files/directories.

        Dotted module names are derived from the filesystem layout: a
        root directory that is itself a package (holds ``__init__.py``)
        contributes its own name as the leading package segment.
        """
        from repro.analyze.suppress import scan_suppressions

        project = cls()
        for root in paths:
            root = Path(root)
            if root.is_dir():
                files = sorted(root.rglob("*.py"))
                base = root if (root / "__init__.py").exists() else None
            else:
                files, base = [root], None
            for f in files:
                if base is not None:
                    rel = f.relative_to(base.parent)
                else:
                    rel = Path(f.name)
                name = ".".join(rel.with_suffix("").parts)
                if name.endswith(".__init__"):
                    name = name[: -len(".__init__")]
                source = f.read_text()
                try:
                    tree = ast.parse(source, filename=str(f))
                except SyntaxError:
                    continue  # the invariant pass reports syntax separately
                mod = ModuleInfo(path=str(f), name=name, tree=tree, source=source)
                mod.suppressions = scan_suppressions(source)
                project._index_module(mod)
        return project

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from in-memory ``{path: source}`` (tests)."""
        from repro.analyze.suppress import scan_suppressions

        project = cls()
        for path, source in sources.items():
            name = ".".join(Path(path).with_suffix("").parts)
            tree = ast.parse(source, filename=path)
            mod = ModuleInfo(path=path, name=name, tree=tree, source=source)
            mod.suppressions = scan_suppressions(source)
            project._index_module(mod)
        return project

    # -- indexing ------------------------------------------------------------
    def _index_module(self, mod: ModuleInfo) -> None:
        self.modules.append(mod)
        self.by_name[mod.name] = mod
        self._collect_functions(mod, mod.tree, prefix="", cls=None, top=True)
        for fi in mod.functions:
            fi.is_generator = any(
                isinstance(n, (ast.Yield, ast.YieldFrom)) for n in fi.owned()
            )
        # Imports anywhere in the module (function-local imports included).
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    mod.symbols.setdefault(
                        bound, ("import", node.module, alias.name)
                    )

    def _collect_functions(
        self, mod: ModuleInfo, node: ast.AST, prefix: str, cls: Optional[str], top: bool
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                sub = f"{prefix}{child.name}."
                self._collect_functions(mod, child, sub, cls=child.name, top=False)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = FunctionInfo(
                    module=mod, qualname=f"{prefix}{child.name}", node=child, cls=cls
                )
                mod.functions.append(fi)
                self.functions.append(fi)
                if top:
                    mod.symbols[child.name] = ("func", fi)
                if cls is not None and prefix.endswith(f"{cls}."):
                    mod.methods[(cls, child.name)] = fi
                self._collect_functions(
                    mod, child, f"{prefix}{child.name}.<locals>.", cls=None, top=False
                )

    # -- resolution ----------------------------------------------------------
    def resolve_name(self, mod: ModuleInfo, name: str) -> Optional[FunctionInfo]:
        """A bare-name reference in ``mod`` -> project function, if any."""
        sym = mod.symbols.get(name)
        if sym is None:
            return None
        if sym[0] == "func":
            return sym[1]
        _tag, target_module, orig = sym
        target = self.by_name.get(target_module)
        if target is None:
            return None
        tsym = target.symbols.get(orig)
        if tsym is not None and tsym[0] == "func":
            return tsym[1]
        return None

    def resolve_call(
        self, caller: FunctionInfo, func: ast.AST
    ) -> Optional[FunctionInfo]:
        """Resolve a Call's ``func`` expression to a project function."""
        if isinstance(func, ast.Name):
            return self.resolve_name(caller.module, func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.cls is not None
        ):
            return caller.module.methods.get((caller.cls, func.attr))
        return None

    # -- call graph ----------------------------------------------------------
    @property
    def call_graph(self) -> Dict[FunctionInfo, Set[FunctionInfo]]:
        """caller -> resolvable callees (lambda bodies fold into the owner)."""
        if self._call_graph is None:
            graph: Dict[FunctionInfo, Set[FunctionInfo]] = {}
            for fi in self.functions:
                callees: Set[FunctionInfo] = set()
                for node in fi.owned():
                    target = None
                    if isinstance(node, ast.Call):
                        target = self.resolve_call(fi, node.func)
                    elif isinstance(node, ast.Lambda):
                        for sub in ast.walk(node):
                            if isinstance(sub, ast.Call):
                                hit = self.resolve_call(fi, sub.func)
                                if hit is not None:
                                    callees.add(hit)
                    if target is not None:
                        callees.add(target)
                graph[fi] = callees
            self._call_graph = graph
        return self._call_graph

    def transitive_callees(self, fi: FunctionInfo) -> Set[FunctionInfo]:
        graph = self.call_graph
        seen: Set[FunctionInfo] = set()
        stack = [fi]
        while stack:
            cur = stack.pop()
            for callee in graph.get(cur, ()):
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen
