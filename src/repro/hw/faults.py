"""Fault schedules: scripted link mutations on a simulated timeline.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`s —
JSONL lines of the shape ``{"t": 2.5e-3, "link": "nvl0->1", "action":
"down"}`` with optional ``factor`` (degrade) and ``node`` (shard scope)
fields — that any :class:`~repro.workload.base.Workload` run can plug in
(``run(..., faults=...)``) and ``python -m repro fault`` drives from the
command line.

Installation is ambient, mirroring the path-policy axis: the schedule is
made active around a run (:func:`fault_schedule`), and every
:class:`~repro.hw.topology.Fabric` built while it is active installs the
matching events on its engine as ordinary ``timeout_at`` heap entries
whose callbacks call the :class:`~repro.hw.links.LinkState` mutation API.
Because installation happens at fabric construction (before any workload
process is spawned) and fires in simulated time, sequential and sharded
drivers observe the identical fabric history — the multiprocessing
executor's forked workers inherit the ambient schedule and re-install it
per shard.

Shard scoping: ``node`` restricts an event to one engine shard (shard
fabrics name links with node-local indices, so ``swup0`` exists on every
shard; ``node`` picks which one fails).  Events without ``node`` apply to
every fabric that sees them.  Cross-shard wire segments are priced
analytically by the shard bridge and have no mutable links; faults apply
to the links a fabric actually owns.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.topology import Fabric


class FaultError(Exception):
    """A malformed fault schedule or an unknown link/action."""


ACTIONS = ("down", "restore", "degrade")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted mutation: at time ``t``, apply ``action`` to ``link``."""

    t: float
    link: str
    action: str                     # "down" | "restore" | "degrade"
    factor: Optional[float] = None  # degrade only: (0, 1] of healthy bw
    node: Optional[int] = None      # shard scope; None = every fabric

    def validate(self, where: str = "fault event") -> None:
        if not isinstance(self.t, (int, float)) or self.t < 0:
            raise FaultError(f"{where}: t must be a non-negative number, got {self.t!r}")
        if not self.link or not isinstance(self.link, str):
            raise FaultError(f"{where}: link must be a non-empty link name")
        if self.action not in ACTIONS:
            raise FaultError(
                f"{where}: unknown action {self.action!r} "
                f"(known: {', '.join(ACTIONS)})"
            )
        if self.action == "degrade":
            if not isinstance(self.factor, (int, float)) or not 0.0 < self.factor <= 1.0:
                raise FaultError(
                    f"{where}: degrade needs factor in (0, 1], got {self.factor!r}"
                )
        elif self.factor is not None:
            raise FaultError(f"{where}: factor only applies to degrade")
        if self.node is not None and (not isinstance(self.node, int) or self.node < 0):
            raise FaultError(f"{where}: node must be a non-negative integer")

    def as_dict(self) -> dict:
        doc = {"t": self.t, "link": self.link, "action": self.action}
        if self.factor is not None:
            doc["factor"] = self.factor
        if self.node is not None:
            doc["node"] = self.node
        return doc


class FaultSchedule:
    """A validated, ordered list of fault events (install order = input order)."""

    def __init__(self, events: Sequence[FaultEvent], source: str = "<faults>") -> None:
        self.events = tuple(events)
        self.source = source
        self.validate()

    def validate(self) -> None:
        if not self.events:
            raise FaultError(f"{self.source}: empty fault schedule")
        for i, ev in enumerate(self.events):
            ev.validate(f"{self.source}: event {i}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def parse_jsonl(cls, text: str, source: str = "<faults>") -> "FaultSchedule":
        events: List[FaultEvent] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise FaultError(f"{source}:{lineno}: invalid JSON: {exc}") from None
            if not isinstance(doc, dict):
                raise FaultError(f"{source}:{lineno}: expected a JSON object")
            unknown = set(doc) - {"t", "link", "action", "factor", "node"}
            if unknown:
                raise FaultError(
                    f"{source}:{lineno}: unknown field(s) {sorted(unknown)}"
                )
            ev = FaultEvent(
                t=doc.get("t"), link=doc.get("link"), action=doc.get("action"),
                factor=doc.get("factor"), node=doc.get("node"),
            )
            ev.validate(f"{source}:{lineno}")
            events.append(ev)
        return cls(events, source=source)

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as fh:
            return cls.parse_jsonl(fh.read(), source=path)

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(ev.as_dict(), sort_keys=True) + "\n" for ev in self.events
        )

    def for_shard(self, shard_id: Optional[int]) -> List[FaultEvent]:
        """Events a fabric on engine shard ``shard_id`` must install.

        ``shard_id=None`` (an unsharded fabric) owns the whole machine and
        installs everything; a shard installs unscoped events plus the
        ones naming its node.
        """
        if shard_id is None:
            return list(self.events)
        return [ev for ev in self.events if ev.node is None or ev.node == shard_id]


# --------------------------------------------------------------------------
# ambient installation (mirrors the REPRO_PATH_POLICY axis)
# --------------------------------------------------------------------------

_AMBIENT: Optional[FaultSchedule] = None


def active() -> Optional[FaultSchedule]:
    """The schedule new fabrics install, or None."""
    return _AMBIENT


def install(sched: FaultSchedule) -> None:
    global _AMBIENT
    _AMBIENT = sched


def uninstall() -> None:
    global _AMBIENT
    _AMBIENT = None


@contextmanager
def fault_schedule(sched: Union[FaultSchedule, str, None]):
    """Make ``sched`` ambient for the duration of one run.

    Accepts a :class:`FaultSchedule`, a JSONL path, or None (no-op, so
    callers can thread an optional ``faults=`` argument straight through).
    Nested installs restore the outer schedule on exit.
    """
    if sched is None:
        yield None
        return
    if isinstance(sched, str):
        sched = FaultSchedule.load(sched)
    prev = _AMBIENT
    install(sched)
    try:
        yield sched
    finally:
        if prev is None:
            uninstall()
        else:
            install(prev)


def install_on_fabric(fabric: "Fabric", sched: FaultSchedule) -> list:
    """Install ``sched``'s events for this fabric; returns the heap events.

    Events at or before the engine's current time apply immediately (a
    fabric rebuilt mid-run — e.g. a shard entering graph mode — must see
    the fabric state its predecessor reached); future events become
    ``timeout_at`` entries whose pop applies the mutation.  The returned
    list lets the owner cancel pending events when it rebuilds the fabric.
    """
    engine = fabric.engine
    state = fabric.link_state
    mine = sched.for_shard(fabric.fault_scope)
    installed = []
    if mine:
        # Guarded execution from t=0: the run's event shape must not
        # change when the first fault fires mid-run.
        state.arm()
    for ev in mine:
        state.find(ev.link)  # unknown names fail at install, not mid-run
        if ev.t <= engine.now:
            _apply(state, ev)
            continue
        timer = engine.timeout_at(ev.t)
        timer.add_callback(lambda _t, fe=ev, st=state: _apply(st, fe))
        installed.append(timer)
    return installed


def _apply(state, ev: FaultEvent) -> None:
    if ev.action == "down":
        state.down_link(ev.link)
    elif ev.action == "restore":
        state.restore_link(ev.link)
    else:
        state.degrade_bandwidth(ev.link, ev.factor)
