"""MPI core: communicators, point-to-point, collectives, progression.

A faithful-enough MPI-4.0 subset to host the paper's contribution:

* rank processes launched by :class:`~repro.mpi.world.World` (an
  ``mpiexec`` equivalent running every rank as a coroutine in one
  deterministic simulation);
* receiver-side tag matching with eager/rendezvous protocols, CUDA-aware
  (device buffers move directly over NVLink/IB routes);
* blocking/nonblocking/persistent point-to-point;
* traditional collectives used as the paper's baselines (host-staged
  ``Allreduce`` etc.);
* a per-rank progression engine — the component that the paper's
  GPU-initiated designs hook into.

MPI Partitioned lives in :mod:`repro.partitioned`; partitioned collectives
in :mod:`repro.pcoll`.  Both plug into the :class:`MpiRuntime` here.
"""

from repro.mpi.errors import MpiError, MpiMatchError, MpiStateError, MpiUsageError
from repro.mpi.ops import MAX, MIN, PROD, SUM, LAND, LOR, MpiOp, NOP
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.requests import Request
from repro.mpi.world import RankCtx, World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "MpiError",
    "MpiMatchError",
    "MpiOp",
    "MpiStateError",
    "MpiUsageError",
    "NOP",
    "PROD",
    "RankCtx",
    "Request",
    "SUM",
    "World",
]
