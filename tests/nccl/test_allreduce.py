"""NCCL baseline: correctness, stream semantics, performance character."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MAX, SUM
from repro.mpi.world import World
from repro.nccl import NcclComm
from repro.nccl.allreduce import _pick_channels
from repro.units import us


def _job(P, n, op=SUM, config=None, epochs=1, values=None):
    config = config or (ONE_NODE if P <= 4 else PAPER_TESTBED)

    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        buf = ctx.gpu.alloc(n)
        outs = []
        for e in range(epochs):
            buf.data[:] = values(ctx.rank, e) if values else float(ctx.rank + 1)
            nccl.all_reduce(buf, buf, op)
            yield from ctx.gpu.sync_h()
            outs.append(buf.data.copy())
        return outs

    return World(config).run(main, nprocs=P)


@pytest.mark.parametrize("P", [2, 3, 4])
def test_allreduce_sum(P):
    for r in _job(P, 64 * P):
        assert np.all(r[0] == sum(range(1, P + 1)))


def test_allreduce_max():
    for r in _job(4, 256, op=MAX):
        assert np.all(r[0] == 4.0)


def test_allreduce_eight_ranks_two_nodes():
    for r in _job(8, 1024, config=PAPER_TESTBED):
        assert np.all(r[0] == 36.0)


def test_multiple_calls_in_sequence():
    res = _job(4, 256, epochs=3, values=lambda r, e: float(r + 1 + e))
    for r in res:
        for e in range(3):
            assert np.all(r[e] == sum(x + 1 + e for x in range(4)))


def test_single_rank_copy():
    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        src = ctx.gpu.alloc(16, fill=3.0)
        dst = ctx.gpu.alloc(16)
        nccl.all_reduce(src, dst)
        yield from ctx.gpu.sync_h()
        assert np.all(dst.data == 3.0)
        return True

    assert World(ONE_NODE).run(main, nprocs=1) == [True]


def test_out_of_place():
    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        src = ctx.gpu.alloc(64, fill=float(ctx.rank + 1))
        dst = ctx.gpu.alloc(64)
        nccl.all_reduce(src, dst)
        yield from ctx.gpu.sync_h()
        assert np.all(dst.data == 10.0)
        assert np.all(src.data == float(ctx.rank + 1))
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_requires_device_buffers():
    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        with pytest.raises(MpiUsageError):
            nccl.all_reduce(ctx.gpu.alloc_pinned(8), ctx.gpu.alloc_pinned(8))
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_count_must_divide_ranks():
    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        with pytest.raises(MpiUsageError):
            nccl.all_reduce(ctx.gpu.alloc(7), ctx.gpu.alloc(7))
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_enqueued_on_stream_not_blocking_host():
    """all_reduce returns immediately; sync waits for completion."""

    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        buf = ctx.gpu.alloc(1 << 18, fill=1.0)
        t0 = ctx.now
        nccl.all_reduce(buf, buf)
        host_cost = ctx.now - t0
        yield from ctx.gpu.sync_h()
        total = ctx.now - t0
        return host_cost, total

    res = World(ONE_NODE).run(main, nprocs=4)
    for host_cost, total in res:
        assert host_cost == 0.0
        assert total > 10 * us


def test_no_per_step_syncs_beats_partitioned():
    """NCCL must beat the partitioned allreduce (paper Fig 6)."""
    from repro.bench.coll import measure_allreduce

    nccl_t = measure_allreduce(1024, "nccl", ONE_NODE, 4)
    part_t = measure_allreduce(1024, "partitioned", ONE_NODE, 4)
    assert nccl_t < part_t


def test_pick_channels():
    assert _pick_channels(512) == 1        # below min granularity
    assert _pick_channels(8192) == 8
    assert _pick_channels(3 * 1024) == 3   # must divide
    assert _pick_channels(1) == 1


@given(
    P=st.sampled_from([2, 4]),
    n_factor=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=15, deadline=None)
def test_property_nccl_equals_numpy_sum(P, n_factor, seed):
    rng = np.random.default_rng(seed)
    n = P * 32 * n_factor
    inputs = {r: rng.standard_normal(n) for r in range(P)}

    def main(ctx):
        nccl = yield from NcclComm.init(ctx)
        buf = ctx.gpu.alloc(n)
        buf.data[:] = inputs[ctx.rank]
        nccl.all_reduce(buf, buf)
        yield from ctx.gpu.sync_h()
        return buf.data.copy()

    results = World(ONE_NODE).run(main, nprocs=P)
    expected = sum(inputs.values())
    for r in results:
        assert np.allclose(r, expected)
