"""Hardware models: machine specs, topology, links, memory spaces, routes.

This package provides the *physical* substrate under the GPU and network
simulators: where buffers live, which links connect which components, and
how long a byte-stream takes to traverse a path.  Machines are described
declaratively (:mod:`repro.hw.spec`) and compiled into a routable link
graph; the paper's GH200 testbed (Section V) is the canonical catalog
entry, with its calibration constants in :mod:`repro.hw.params`.
"""

from repro.hw.params import GH200Params, TestbedConfig
from repro.hw.memory import Buffer, MemSpace
from repro.hw.links import Link
from repro.hw.spec import MachineSpec, as_spec, gh200_spec, named_spec
from repro.hw.topology import Fabric, GpuId, MachineLike, Topology

__all__ = [
    "Buffer",
    "Fabric",
    "GH200Params",
    "GpuId",
    "Link",
    "MachineLike",
    "MachineSpec",
    "MemSpace",
    "TestbedConfig",
    "Topology",
    "as_spec",
    "gh200_spec",
    "named_spec",
]
