"""Findings and reports produced by the sanitizer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.san.record import Actor, TraceEvent, fmt_actor
from repro.units import fmt_time


@dataclass(frozen=True)
class Finding:
    """One detected violation, with actor/time provenance."""

    check: str                       # check id, e.g. "double-pready"
    message: str
    time: float
    actor: Optional[Actor] = None
    #: Related (time, actor, what) provenance, e.g. the first Pready of a
    #: doubled pair, or the conflicting access of a race.
    related: Tuple[Tuple[float, Optional[Actor], str], ...] = ()

    def render(self) -> str:
        head = (
            f"[{self.check}] t={fmt_time(self.time)} "
            f"actor={fmt_actor(self.actor)}: {self.message}"
        )
        lines = [head]
        for t, actor, what in self.related:
            lines.append(f"    .. t={fmt_time(t)} actor={fmt_actor(actor)}: {what}")
        return "\n".join(lines)


@dataclass
class Report:
    """Outcome of one sanitized window: findings + the full trace."""

    findings: List[Finding] = field(default_factory=list)
    trace: Sequence[TraceEvent] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_check(self, check: str) -> List[Finding]:
        return [f for f in self.findings if f.check == check]

    def render(self) -> str:
        if not self.findings:
            return f"san: 0 findings ({len(self.trace)} trace events)"
        lines = [f"san: {len(self.findings)} finding(s):"]
        lines += [f.render() for f in self.findings]
        return "\n".join(lines)
