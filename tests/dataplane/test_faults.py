"""Guarded execution under faults: re-route, FabricFault, congestion, rebind."""

import numpy as np
import pytest

from repro.dataplane import MultiPathPolicy, SinglePathPolicy, policy_from_env
from repro.dataplane.graph import GRAPHS
from repro.dataplane.ledger import Ledger
from repro.dataplane.plane import FabricFault
from repro.dataplane.policy import CongestionAwarePolicy
from repro.hw.faults import FaultEvent, FaultSchedule, fault_schedule
from repro.hw.links import LinkDownError, start_transfer
from repro.hw.memory import Buffer, MemSpace
from repro.hw.spec.generators import resolve_machine
from repro.hw.topology import Fabric
from repro.sim.engine import Engine
from repro.units import MiB


def _mk(machine="gh200-1x4", policy=None):
    engine = Engine()
    fab = Fabric(engine, resolve_machine(machine))
    if policy is not None:
        fab.dataplane.policy = policy
    return engine, fab


def dev(fab, gpu, n=8, fill=None):
    return Buffer.alloc(
        n, space=MemSpace.DEVICE, node=fab.topo.node_of(gpu), gpu=gpu, fill=fill
    )


def _run(engine, gen):
    done = engine.process(gen, name="t")
    engine.run()
    assert done.ok, done.value
    return done.value


def _chunked_run(fault_t=None, chunks=8, chunk_bytes=MiB):
    """Submit ``chunks`` pipelined puts gpu0->gpu1 at t=0 (they queue on
    the nvl0->1 port); optionally down nvl0->1 at ``fault_t`` so queued
    acquisitions abort and re-route.  Returns (t_end, reroutes, faults,
    ok_payload)."""
    sched = None
    if fault_t is not None:
        sched = FaultSchedule([FaultEvent(fault_t, "nvl0->1", "down")])
    with fault_schedule(sched):
        engine, fab = _mk(policy=SinglePathPolicy())
    dp = fab.dataplane
    pairs = [(dev(fab, 0, n=chunk_bytes, fill=i + 1), dev(fab, 1, n=chunk_bytes))
             for i in range(chunks)]

    def body():
        events = [dp.put(s, d, name=f"c{i}") for i, (s, d) in enumerate(pairs)]
        for ev in events:
            res = yield ev
            assert not isinstance(res, FabricFault), res
        return engine.now

    t_end = _run(engine, body())
    ok = all(np.array_equal(d.data, s.data) for s, d in pairs)
    return t_end, dp.reroutes, dp.faults, ok


# -- re-route around a downed link --------------------------------------------

def test_midrun_link_down_reroutes_and_completes():
    healthy_t, r0, f0, ok0 = _chunked_run(fault_t=None)
    assert ok0 and r0 == 0 and f0 == 0
    faulted_t, reroutes, faults, ok = _chunked_run(fault_t=healthy_t / 2)
    assert ok, "payload must still land after the re-route"
    assert reroutes > 0 and faults == 0
    assert faulted_t > healthy_t  # detour routes are strictly worse


def test_faulted_run_repeats_bit_identically():
    healthy_t, *_ = _chunked_run(fault_t=None)
    a = _chunked_run(fault_t=healthy_t / 2)
    b = _chunked_run(fault_t=healthy_t / 2)
    assert a == b


def test_striped_transfer_bounded_by_healthy_and_single():
    """Acceptance pin: a 4 MiB striped transfer that loses one mesh link
    lands strictly between the healthy multipath and single-path bounds."""
    def timed(machine_policy, down=None):
        engine, fab = _mk(policy=machine_policy)
        if down is not None:
            fab.link_state.down_link(down)
        src = dev(fab, 0, n=4 * MiB, fill=3)
        dst = dev(fab, 1, n=4 * MiB)

        def body():
            res = yield fab.dataplane.put(src, dst)
            assert not isinstance(res, FabricFault), res
            return engine.now

        t = _run(engine, body())
        assert np.array_equal(dst.data, src.data)
        return t

    healthy = timed(MultiPathPolicy())
    faulted = timed(MultiPathPolicy(), down="nvl0->1")
    single = timed(SinglePathPolicy())
    assert healthy < faulted < single


# -- FabricFault: no surviving route ------------------------------------------

def test_no_route_yields_falsy_fabric_fault():
    engine, fab = _mk("gh200-2x1")  # ib is the only inter-node path
    fab.link_state.down_link("ib_out0")
    src = dev(fab, 0, n=4096, fill=1)
    dst = dev(fab, 1, n=4096)

    def body():
        return (yield fab.dataplane.put(src, dst))

    res = _run(engine, body())
    assert isinstance(res, FabricFault)
    assert not res                       # falsy at wait sites
    assert res.link == "ib_out0"
    assert fab.dataplane.faults == 1
    assert not np.array_equal(dst.data, src.data)


def test_fault_does_not_tear_down_sibling_transfers():
    engine, fab = _mk("gh200-2x1")
    fab.link_state.down_link("ib_out0")
    dead_src, dead_dst = dev(fab, 0, n=1024, fill=1), dev(fab, 1, n=1024)
    ok_src, ok_dst = dev(fab, 0, n=1024, fill=2), dev(fab, 0, n=1024)

    def body():
        dead = fab.dataplane.put(dead_src, dead_dst, name="dead")
        ok = fab.dataplane.put(ok_src, ok_dst, name="ok")
        res_dead = yield dead
        res_ok = yield ok
        return res_dead, res_ok

    res_dead, res_ok = _run(engine, body())
    assert isinstance(res_dead, FabricFault)
    assert not isinstance(res_ok, FabricFault)
    assert np.array_equal(ok_dst.data, ok_src.data)


# -- outstanding-bytes balance ------------------------------------------------

def _assert_drained(fab):
    dirty = [l.name for l in fab.link_state._by_name.values()
             if l.outstanding_bytes != 0]
    assert not dirty, f"links left charged: {dirty}"


def test_outstanding_bytes_drain_after_clean_run():
    engine, fab = _mk(policy=MultiPathPolicy())
    src, dst = dev(fab, 0, n=2 * MiB, fill=5), dev(fab, 1, n=2 * MiB)

    def body():
        yield fab.dataplane.put(src, dst)

    _run(engine, body())
    _assert_drained(fab)


def test_outstanding_bytes_drain_after_faulted_run():
    healthy_t, *_ = _chunked_run(fault_t=None)
    sched = FaultSchedule([FaultEvent(healthy_t / 2, "nvl0->1", "down")])
    with fault_schedule(sched):
        engine, fab = _mk(policy=SinglePathPolicy())
    src, dst = dev(fab, 0, n=MiB, fill=5), dev(fab, 1, n=MiB)

    def body():
        for i in range(8):
            yield fab.dataplane.put(src, dst, name=f"c{i}")

    _run(engine, body())
    _assert_drained(fab)


def test_linkdown_abort_discharges_via_finally():
    """A transfer queued behind a port when its link dies aborts with
    LinkDownError — and its charge is still returned by the finally."""
    engine, fab = _mk()
    link = fab.link_state.find("nvl0->1")
    route = (link,)
    ledger = fab.dataplane.ledger

    def first():
        Ledger.charge_links(route, 1 * MiB)
        yield start_transfer(engine, route, 1 * MiB, ledger=ledger)

    def second():
        Ledger.charge_links(route, 1 * MiB)
        try:
            yield start_transfer(engine, route, 1 * MiB, ledger=ledger)
        except LinkDownError:
            return "aborted"
        return "completed"

    def saboteur():
        yield engine.timeout(1e-9)       # first holds the port by now
        fab.link_state.down_link("nvl0->1")

    engine.process(first(), name="first")
    done = engine.process(second(), name="second")
    engine.process(saboteur(), name="saboteur")
    engine.run()
    assert done.ok and done.value == "aborted"
    assert link.outstanding_bytes == 0


# -- congestion-aware policy --------------------------------------------------

def test_policy_from_env_congestion():
    assert isinstance(policy_from_env("congestion"), CongestionAwarePolicy)


def _concurrent_run(policy, n=8, nbytes=16 * MiB):
    engine, fab = _mk(policy=policy)
    pairs = [(dev(fab, 0, n=nbytes, fill=i + 1), dev(fab, 1, n=nbytes))
             for i in range(n)]

    def body():
        events = [fab.dataplane.put(s, d, name=f"x{i}")
                  for i, (s, d) in enumerate(pairs)]
        for ev in events:
            yield ev
        return engine.now

    t_end = _run(engine, body())
    for s, d in pairs:
        assert np.array_equal(d.data, s.data)
    _assert_drained(fab)
    return t_end


def test_congestion_policy_beats_single_path_on_concurrent_load():
    single = _concurrent_run(SinglePathPolicy())
    congested = _concurrent_run(CongestionAwarePolicy())
    # 8 same-pair transfers serialize on one port under SinglePath; the
    # congestion signal spreads them over the disjoint candidates.
    assert congested < single / 1.5


def test_congestion_policy_is_deterministic():
    assert _concurrent_run(CongestionAwarePolicy()) == \
        _concurrent_run(CongestionAwarePolicy())


def test_congestion_policy_skips_downed_candidates():
    engine, fab = _mk(policy=CongestionAwarePolicy())
    fab.link_state.down_link("nvl0->1")
    src, dst = dev(fab, 0, n=MiB, fill=9), dev(fab, 1, n=MiB)

    def body():
        res = yield fab.dataplane.put(src, dst)
        assert not isinstance(res, FabricFault), res

    _run(engine, body())
    assert np.array_equal(dst.data, src.data)


# -- plan-cache rebind --------------------------------------------------------

class _Tap:
    def __init__(self):
        self.events = []

    def on_event(self, ev):
        self.events.append(ev)


def test_plan_rebind_after_epoch_bump():
    from repro.obs.bus import Bus

    GRAPHS.reset()
    engine, fab = _mk(policy=MultiPathPolicy())
    bus, tap = Bus(), _Tap()
    bus.subscribe(tap)
    engine.obs = bus
    dp = fab.dataplane.enable_plan_cache()
    src, dst = dev(fab, 0, n=4 * MiB, fill=2), dev(fab, 1, n=4 * MiB)

    def put_once():
        res = yield dp.put(src, dst, name="iter")
        assert not isinstance(res, FabricFault), res

    _run(engine, put_once())
    assert GRAPHS.captured_plans == 1 and GRAPHS.replanned == 0

    fab.link_state.down_link("nvl0->1")
    _run(engine, put_once())
    assert GRAPHS.replanned == 1
    assert np.array_equal(dst.data, src.data)

    plan_evs = [(e.name, e.get("legs_moved"), e.get("legs_kept"))
                for e in tap.events if e.cat == "plan"]
    builds = [e for e in plan_evs if e[0] == "build"]
    rebinds = [e for e in plan_evs if e[0] == "rebind"]
    assert len(builds) == 1, "rebind must not re-run the full plan build"
    assert len(rebinds) == 1
    _name, moved, kept = rebinds[0]
    assert moved >= 1 and kept >= 1
    assert moved + kept == 4


def test_plan_rebind_replays_cheaply_at_same_epoch():
    GRAPHS.reset()
    engine, fab = _mk(policy=MultiPathPolicy())
    dp = fab.dataplane.enable_plan_cache()
    src, dst = dev(fab, 0, n=MiB, fill=4), dev(fab, 1, n=MiB)
    fab.link_state.down_link("nvl0->1")

    def body():
        for i in range(3):
            yield dp.put(src, dst, name="iter")

    _run(engine, body())
    # One build at epoch 1, then pure replays: the epoch never moves again.
    assert GRAPHS.captured_plans == 1
    assert GRAPHS.replanned == 0
    assert dp.plan_cache.hits == 2


def test_plan_dropped_when_no_route_survives():
    GRAPHS.reset()
    engine, fab = _mk("gh200-2x1")
    dp = fab.dataplane.enable_plan_cache()
    src, dst = dev(fab, 0, n=4096, fill=6), dev(fab, 1, n=4096)

    def put_once():
        return (yield dp.put(src, dst, name="iter"))

    assert not isinstance(_run(engine, put_once()), FabricFault)
    fab.link_state.down_link("ib_out0")
    res = _run(engine, put_once())
    assert isinstance(res, FabricFault)
    assert GRAPHS.replanned == 0         # dead leg had no route: plan dropped
