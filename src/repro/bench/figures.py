"""One generator per paper exhibit: run the workload, return a Series.

These are the canonical entry points used by the ``benchmarks/`` pytest
targets and by ``examples/``; EXPERIMENTS.md records their output against
the paper's reported values.  Grid sweeps default to a decimated version
of the paper's axes so a full regeneration stays in CI-friendly time;
pass explicit ``grids=``/``multipliers=`` for denser sweeps.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.bench import coll as coll_bench
from repro.bench import apps as app_bench
from repro.bench import p2p as p2p_bench
from repro.bench.series import Series
from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.partitioned.aggregation import SignalMode
from repro.units import us, GBps

FIG2_GRIDS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 131072)
FIG3_THREADS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
FIG45_GRIDS = (1, 4, 16, 64, 256, 1024, 2048, 8192, 32768)
FIG67_GRIDS = (1024, 2048, 4096, 8192, 16384, 32768)
FIG89_MULTIPLIERS = (1, 2, 4, 8, 16, 32)
FIG1011_GRIDS = (256, 1024, 4096)


def fig2(grids: Sequence[int] = FIG2_GRIDS) -> Series:
    """Fig 2: cudaStreamSynchronize cost vs kernel launch+sync."""
    s = Series(
        "Fig 2",
        "cudaStreamSynchronize cost and launch+sync time (vector add, block=1024)",
        ["grid", "total_us", "sync_us", "sync_pct", "lost_overlap_us"],
    )
    for grid in grids:
        r = p2p_bench.measure_launch_sync(grid)
        sync = r["sync_only"]
        s.add(
            grid=grid,
            total_us=r["total"] / us,
            sync_us=sync / us,
            sync_pct=100.0 * sync / r["total"],
            lost_overlap_us=(r["total"] - r["launch_api"]) / us,
        )
    s.note("paper: sync 7.8us constant; 71.6-78.9% of total for grids <= 256; 0.8% at 128K")
    return s


def fig3(threads: Sequence[int] = FIG3_THREADS) -> Series:
    """Fig 3: MPIX_Pready cost for thread/warp/block mappings."""
    s = Series(
        "Fig 3",
        "Cost of mapping partitions to threads, warps and blocks (intra-node)",
        ["threads", "thread_us", "warp_us", "block_us"],
    )
    for n in threads:
        s.add(
            threads=n,
            thread_us=p2p_bench.measure_pready_cost(n, SignalMode.THREAD) / us,
            warp_us=p2p_bench.measure_pready_cost(n, SignalMode.WARP) / us,
            block_us=p2p_bench.measure_pready_cost(n, SignalMode.BLOCK) / us,
        )
    last = s.rows[-1]
    s.note(
        f"at 1024 threads: thread/block = {last['thread_us'] / last['block_us']:.1f}x "
        f"(paper 271.5x), warp/block = {last['warp_us'] / last['block_us']:.1f}x (paper 9.4x)"
    )
    return s


def fig4(grids: Sequence[int] = FIG45_GRIDS) -> Series:
    """Fig 4: intra-node goodput — Kernel Copy vs Progression Engine vs Send/Recv."""
    s = Series(
        "Fig 4",
        "Intra-node goodput, two GH200 on one node (GB/s)",
        ["grid", "sendrecv", "progression", "kernel_copy", "pe_speedup", "kc_speedup"],
    )
    for grid in grids:
        tr = p2p_bench.measure_p2p_goodput(grid, "sendrecv", ONE_NODE)
        pe = p2p_bench.measure_p2p_goodput(grid, "progression", ONE_NODE)
        kc = p2p_bench.measure_p2p_goodput(grid, "kernel_copy", ONE_NODE)
        s.add(
            grid=grid, sendrecv=tr / GBps, progression=pe / GBps,
            kernel_copy=kc / GBps, pe_speedup=pe / tr, kc_speedup=kc / tr,
        )
    s.note("paper: PE <= 1.28x (small), ~1.0x >= 2K grids; KC 2.34x small, 1.06x at 32K")
    return s


def fig5(grids: Sequence[int] = FIG45_GRIDS) -> Series:
    """Fig 5: inter-node goodput — Partitioned (PE) vs Send/Recv."""
    s = Series(
        "Fig 5",
        "Inter-node goodput, two GH200 on two nodes (GB/s)",
        ["grid", "sendrecv", "progression", "pe_speedup"],
    )
    for grid in grids:
        tr = p2p_bench.measure_p2p_goodput(grid, "sendrecv", p2p_bench.TWO_NODE_PAIR)
        pe = p2p_bench.measure_p2p_goodput(grid, "progression", p2p_bench.TWO_NODE_PAIR)
        s.add(grid=grid, sendrecv=tr / GBps, progression=pe / GBps, pe_speedup=pe / tr)
    s.note("paper: 2.80x at grid 1, 1.17x at the largest grid; 2 transport partitions best")
    return s


def _allreduce_series(exhibit: str, config, nprocs: int, grids: Sequence[int]) -> Series:
    s = Series(
        exhibit,
        f"Allreduce kernel+communication time, {nprocs} GH200 ({config.n_nodes} node(s))",
        ["grid", "traditional_us", "partitioned_us", "nccl_us", "trad_over_part", "part_minus_nccl_us"],
    )
    for grid in grids:
        tr = coll_bench.measure_allreduce(grid, "traditional", config, nprocs)
        pa = coll_bench.measure_allreduce(grid, "partitioned", config, nprocs)
        nc = coll_bench.measure_allreduce(grid, "nccl", config, nprocs)
        s.add(
            grid=grid, traditional_us=tr / us, partitioned_us=pa / us, nccl_us=nc / us,
            trad_over_part=tr / pa, part_minus_nccl_us=(pa - nc) / us,
        )
    s.note("paper: partitioned orders of magnitude under MPI_Allreduce; NCCL best (~226us gap at 1K)")
    return s


def fig6(grids: Sequence[int] = FIG67_GRIDS) -> Series:
    """Fig 6: allreduce on four GH200 (one node)."""
    return _allreduce_series("Fig 6", ONE_NODE, 4, grids)


def fig7(grids: Sequence[int] = FIG67_GRIDS[:-1]) -> Series:
    """Fig 7: allreduce on eight GH200 (two nodes, ranks 0-3 / 4-7 per node).

    Default sweep stops at 16K grids: eight ranks x 256 MiB working sets
    plus ring staging exceed a 16 GB host at 32K (simulator memory, not a
    modelled limit).
    """
    return _allreduce_series("Fig 7", PAPER_TESTBED, 8, grids)


def table1() -> Series:
    """Table I: overheads of the partitioned API calls."""
    o = coll_bench.measure_overheads()
    s = Series(
        "Table I",
        "Overheads for different MPI calls",
        ["call", "measured_us", "paper_us"],
    )
    s.add(call="MPI_Psend_init", measured_us=o["psend_init"] / us, paper_us=17.2)
    s.add(call="MPI_Precv_init", measured_us=o["precv_init"] / us, paper_us=17.2)
    s.add(call="MPIX_Pallreduce_init", measured_us=o["pallreduce_init"] / us, paper_us=62.3)
    s.add(call="MPIX_Prequest_create", measured_us=o["prequest_create"] / us, paper_us=110.7)
    s.add(call="MPIX_Pbuf_prepare (first)", measured_us=o["pbuf_prepare_first"] / us, paper_us=193.4)
    s.add(call="MPIX_Pbuf_prepare (avg)", measured_us=o["pbuf_prepare_avg"] / us, paper_us=3.4)
    return s


def _jacobi_series(exhibit: str, config, nprocs: int, multipliers: Sequence[int],
                   iters: int, base_tile: int) -> Series:
    s = Series(
        exhibit,
        f"Jacobi solver GFLOP/s, {nprocs} GH200 ({config.n_nodes} node(s))",
        ["multiplier", "traditional", "partitioned_pe", "partitioned_kc", "pe_speedup", "kc_speedup"],
    )
    for m in multipliers:
        tr = app_bench.measure_jacobi_gflops(m, "traditional", config, nprocs, base_tile, iters)
        pe = app_bench.measure_jacobi_gflops(m, "partitioned", config, nprocs, base_tile, iters, "pe")
        kc = app_bench.measure_jacobi_gflops(m, "partitioned", config, nprocs, base_tile, iters, "kc_auto")
        s.add(
            multiplier=m, traditional=tr, partitioned_pe=pe, partitioned_kc=kc,
            pe_speedup=pe / tr, kc_speedup=kc / tr,
        )
    s.note("paper: best 1.06x on one node, 1.30x on two nodes; gains shrink as size grows")
    s.note("we report both copy modes; the paper's figure lies inside the [PE, KC] envelope")
    return s


def fig8(multipliers: Sequence[int] = FIG89_MULTIPLIERS, iters: int = 150, base_tile: int = 16) -> Series:
    """Fig 8: Jacobi GFLOP/s on four GH200 (2x2 decomposition)."""
    return _jacobi_series("Fig 8", ONE_NODE, 4, multipliers, iters, base_tile)


def fig9(multipliers: Sequence[int] = FIG89_MULTIPLIERS, iters: int = 150, base_tile: int = 16) -> Series:
    """Fig 9: Jacobi GFLOP/s on eight GH200 (4x2 decomposition)."""
    return _jacobi_series("Fig 9", PAPER_TESTBED, 8, multipliers, iters, base_tile)


def _dl_series(exhibit: str, config, nprocs: int, grids: Sequence[int]) -> Series:
    s = Series(
        exhibit,
        f"Deep-learning kernel (BCE + gradient allreduce) per-step time, {nprocs} GH200",
        ["grid", "traditional_us", "partitioned_us", "nccl_us"],
    )
    for grid in grids:
        s.add(
            grid=grid,
            traditional_us=app_bench.measure_dl_step_time(grid, "traditional", config, nprocs) / us,
            partitioned_us=app_bench.measure_dl_step_time(grid, "partitioned", config, nprocs) / us,
            nccl_us=app_bench.measure_dl_step_time(grid, "nccl", config, nprocs) / us,
        )
    s.note("paper: partitioned well under MPI_Allreduce; NCCL still best (collective-bound)")
    return s


def fig10(grids: Sequence[int] = FIG1011_GRIDS) -> Series:
    """Fig 10: DL kernel on four GH200."""
    return _dl_series("Fig 10", ONE_NODE, 4, grids)


def fig11(grids: Sequence[int] = FIG1011_GRIDS) -> Series:
    """Fig 11: DL kernel on eight GH200."""
    return _dl_series("Fig 11", PAPER_TESTBED, 8, grids)


ALL_EXHIBITS = {
    "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5,
    "fig6": fig6, "fig7": fig7, "table1": table1,
    "fig8": fig8, "fig9": fig9, "fig10": fig10, "fig11": fig11,
}
