#!/usr/bin/env python
"""Repo-invariant AST lint (wallclock, raw-units, dropped-return).

Thin wrapper over :mod:`repro.san.lint` so it runs without installing the
package: ``python scripts/lint_repro.py [paths...]``.  Exits non-zero on
any finding; ``--list`` shows the full static-rule registry (shared with
``python -m repro analyze``, which supersedes this shim for whole-program
analysis).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.san.lint import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
