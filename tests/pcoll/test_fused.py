"""Fused device-side partitioned allreduce (the Section VI-B extension)."""

import numpy as np
import pytest

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.ops import MAX, SUM
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.pcoll.fused import FusedPallreduce, fused_pallreduce_init


def _job(P, U, chunk=64, epochs=1, op=SUM, values=None, via_comm=False):
    n = U * P * chunk

    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n)
        if via_comm:
            req = yield from comm.pallreduce_init(
                w, w, partitions=U, op=op, device=ctx.gpu, fused=True
            )
        else:
            req = yield from fused_pallreduce_init(comm, w, w, U, op, ctx.gpu)
        outs = []
        for e in range(epochs):
            w.data[:] = values(ctx.rank, e) if values else float(ctx.rank + 1)
            yield from req.start()
            yield from req.pbuf_prepare()
            for u in range(U):
                yield from req.pready(u)
            yield from req.wait()
            outs.append(w.data.copy())
        return outs

    return World(ONE_NODE).run(main, nprocs=P)


@pytest.mark.parametrize("P,U", [(2, 1), (2, 4), (3, 2), (4, 8)])
def test_fused_sum(P, U):
    for r in _job(P, U):
        assert np.all(r[0] == sum(range(1, P + 1)))


def test_fused_via_comm_api():
    for r in _job(4, 4, via_comm=True):
        assert np.all(r[0] == 10.0)


def test_fused_max():
    for r in _job(4, 2, op=MAX):
        assert np.all(r[0] == 4.0)


def test_fused_multi_epoch():
    res = _job(4, 2, epochs=3, values=lambda r, e: float(r + 1 + 5 * e))
    for r in res:
        for e in range(3):
            assert np.all(r[e] == sum(x + 1 + 5 * e for x in range(4)))


def test_fused_nonuniform_payload():
    n = 4 * 2 * 32

    def main(ctx):
        comm = ctx.comm
        w = ctx.gpu.alloc(n)
        w.data[:] = np.arange(n) + 1000 * ctx.rank
        req = yield from fused_pallreduce_init(comm, w, w, 2, SUM, ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(2):
            yield from req.pready(u)
        yield from req.wait()
        return w.data.copy()

    results = World(ONE_NODE).run(main, nprocs=4)
    expected = sum(np.arange(n) + 1000 * r for r in range(4))
    for r in results:
        assert np.allclose(r, expected)


def test_fused_rejects_cross_node_clique():
    def main(ctx):
        comm = ctx.comm
        n = 8 * 8 * 8
        w = ctx.gpu.alloc(n)
        with pytest.raises(MpiUsageError, match="NVLink"):
            yield from fused_pallreduce_init(comm, w, w, 8, SUM, ctx.gpu)
        return True

    assert all(World(PAPER_TESTBED).run(main, nprocs=8))


def test_fused_requires_in_place():
    def main(ctx):
        comm = ctx.comm
        with pytest.raises(MpiUsageError, match="in-place"):
            yield from fused_pallreduce_init(
                comm, ctx.gpu.alloc(64), ctx.gpu.alloc(64), 2, SUM, ctx.gpu
            )
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_fused_pready_semantics_enforced():
    def main(ctx):
        comm = ctx.comm
        n = 4 * 2 * 16
        w = ctx.gpu.alloc(n, fill=1.0)
        req = yield from fused_pallreduce_init(comm, w, w, 2, SUM, ctx.gpu)
        with pytest.raises(MpiStateError):
            req.issue_user_pready(0)   # before start
        yield from req.start()
        yield from req.pbuf_prepare()
        yield from req.pready(0)
        with pytest.raises(MpiStateError, match="twice"):
            yield from req.pready(0)
        with pytest.raises(MpiUsageError):
            yield from req.pready(7)
        yield from req.pready(1)
        yield from req.wait()
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_fused_device_driven():
    def main(ctx):
        comm = ctx.comm
        grid, block = 16, 1024
        w = ctx.gpu.alloc(grid * block, fill=float(ctx.rank + 1))
        req = yield from fused_pallreduce_init(comm, w, w, 4, SUM, ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        preq = yield from req.prequest_create(ctx.gpu, grid=grid, block=block)
        k = UniformKernel(grid, block, WorkSpec.vector_add(),
                          wave_hook=lambda kc, wv: pdev.pready_wave(kc, preq, wv))
        yield from ctx.gpu.launch_h(k)
        yield from req.wait()
        assert np.all(w.data == 10.0)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))


def test_fused_beats_host_progressed_collective():
    """The headline prediction: fused closes the gap to NCCL."""
    from repro.bench.coll import measure_allreduce
    from repro.cuda import UniformKernel as UK

    def fused_main(ctx):
        comm = ctx.comm
        grid = 1024
        w = ctx.gpu.alloc(grid * 1024)
        req = yield from fused_pallreduce_init(comm, w, w, 8, SUM, ctx.gpu)
        preq = None
        times = []
        for _ in range(2):
            w.data[:] = 1.0
            yield from req.start()
            yield from req.pbuf_prepare()
            if preq is None:
                preq = yield from req.prequest_create(ctx.gpu, grid=grid, block=1024)
            yield from comm.barrier()
            t0 = ctx.now
            k = UK(grid, 1024, WorkSpec.vector_add(),
                   wave_hook=lambda kc, wv: pdev.pready_wave(kc, preq, wv))
            yield from ctx.gpu.launch_h(k)
            yield from req.wait()
            times.append(ctx.now - t0)
        return times

    per_rank = World(ONE_NODE).run(fused_main, nprocs=4)
    fused_t = max(col[-1] for col in per_rank)
    pe_t = measure_allreduce(1024, "partitioned", ONE_NODE, 4)
    nccl_t = measure_allreduce(1024, "nccl", ONE_NODE, 4)
    assert fused_t < pe_t * 0.6
    assert fused_t < nccl_t * 1.2


def test_fused_parrived():
    def main(ctx):
        comm = ctx.comm
        n = 4 * 2 * 16
        w = ctx.gpu.alloc(n, fill=1.0)
        req = yield from fused_pallreduce_init(comm, w, w, 2, SUM, ctx.gpu)
        yield from req.start()
        yield from req.pbuf_prepare()
        assert not req.parrived(0)
        for u in range(2):
            yield from req.pready(u)
        yield from req.wait()
        assert req.parrived(0) and req.parrived(1)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=4))
