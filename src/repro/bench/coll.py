"""Workload runners for the collective exhibits (Figs 6/7, Table I).

Fig 6/7 methodology (Section VI-B): Ring algorithm everywhere, large
kernel grid sizes, 8 B contributed per CUDA thread; the measured window is
kernel execution + communication (``MPI_Start``/``MPIX_Pbuf_prepare``
excluded here, *included* in the DL loop of Figs 10/11).  Multi-node runs
place ranks 0-3 and 4-7 on the same nodes, which :class:`~repro.mpi.world.
World`'s rank->GPU mapping already guarantees.
"""

from __future__ import annotations

from typing import Dict, Generator, List

import numpy as np

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.hw.topology import MachineLike
from repro.mpi.ops import SUM
from repro.nccl import NcclComm
from repro.partitioned import device as pdev
from repro.bench.p2p import BLOCK, BYTES_PER_THREAD
from repro.workload.runner import run_ranks

#: User partitions for the partitioned allreduce rows.
DEFAULT_USER_PARTITIONS = 8


def _allreduce_main(ctx, grid: int, variant: str, iters: int, partitions: int) -> Generator:
    comm = ctx.comm
    n = grid * BLOCK
    work = WorkSpec.vector_add(BYTES_PER_THREAD)
    w = ctx.gpu.alloc(n, label="ar")
    times: List[float] = []

    nccl = None
    pall = None
    preq = None
    if variant == "nccl":
        nccl = yield from NcclComm.init(ctx)
    elif variant == "partitioned":
        pall = yield from comm.pallreduce_init(w, w, partitions=partitions, device=ctx.gpu)

    def produce() -> None:
        w.data[:] = float(ctx.rank + 1)

    for _ in range(iters):
        if variant == "partitioned":
            yield from pall.start()
            yield from pall.pbuf_prepare()
            if preq is None:
                preq = yield from pall.prequest_create(ctx.gpu, grid=grid, block=BLOCK)
        yield from comm.barrier()
        t0 = ctx.now
        if variant == "traditional":
            yield from ctx.gpu.launch_h(UniformKernel(grid, BLOCK, work, apply=produce))
            yield from ctx.gpu.sync_h()
            yield from comm.allreduce(w, w, SUM)
        elif variant == "nccl":
            yield from ctx.gpu.launch_h(UniformKernel(grid, BLOCK, work, apply=produce))
            nccl.all_reduce(w, w, SUM)
            yield from ctx.gpu.sync_h()
        else:
            kernel = UniformKernel(
                grid, BLOCK, work, apply=produce,
                wave_hook=pdev.PreadyWaveHook(preq),
            )
            yield from ctx.gpu.launch_h(kernel)
            yield from pall.wait()
        times.append(ctx.now - t0)
        expect = sum(r + 1 for r in range(comm.size))
        assert np.allclose(w.data, expect), f"allreduce wrong: {w.data[:4]} != {expect}"
    return times


def measure_allreduce(
    grid: int,
    variant: str,
    config: TestbedConfig,
    nprocs: int,
    iters: int = 2,
    partitions: int = DEFAULT_USER_PARTITIONS,
) -> float:
    """Mean kernel+communication window (seconds), warmup dropped."""
    per_rank = run_ranks(
        config, _allreduce_main, nprocs=nprocs,
        args=(grid, variant, iters + 1, partitions),
    ).results
    windows = [max(col) for col in zip(*per_rank)][1:]
    return sum(windows) / len(windows)


# --------------------------------------------------------------------------
# Table I: API call overheads
# --------------------------------------------------------------------------

def measure_overheads(iters: int = 100, config: MachineLike = ONE_NODE) -> Dict[str, object]:
    """Time the partitioned API calls exactly as Table I describes."""
    out: Dict[str, object] = {}

    def p2p_main(ctx):
        comm = ctx.comm
        n = 64 * 1024
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n)
            t0 = ctx.now
            sreq = yield from comm.psend_init(sbuf, 8, dest=1, tag=0)
            t_init = ctx.now - t0
            prepare_times = []
            preq = None
            t_create = None
            for it in range(iters):
                yield from sreq.start()
                t0 = ctx.now
                yield from sreq.pbuf_prepare()
                prepare_times.append(ctx.now - t0)
                if preq is None:
                    t0 = ctx.now
                    preq = yield from sreq.prequest_create(ctx.gpu, grid=8, block=BLOCK)
                    t_create = ctx.now - t0
                for tp in range(8):
                    yield from sreq.pready(tp)
                yield from sreq.wait()
            return {
                "psend_init": t_init,
                "prequest_create": t_create,
                "pbuf_prepare_first": prepare_times[0],
                "pbuf_prepare_avg": sum(prepare_times[1:]) / (len(prepare_times) - 1),
            }
        else:
            rbuf = ctx.gpu.alloc(n)
            t0 = ctx.now
            rreq = yield from comm.precv_init(rbuf, 8, source=0, tag=0)
            t_init = ctx.now - t0
            for it in range(iters):
                yield from rreq.start()
                yield from rreq.pbuf_prepare()
                yield from rreq.wait()
            return {"precv_init": t_init}

    res = run_ranks(config, p2p_main, nprocs=2).results
    out.update(res[0])
    out.update(res[1])

    def coll_main(ctx):
        comm = ctx.comm
        n = 8 * comm.size * 1024
        w = ctx.gpu.alloc(n)
        t0 = ctx.now
        req = yield from comm.pallreduce_init(w, w, partitions=8, device=ctx.gpu)
        t_init = ctx.now - t0
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(8):
            yield from req.pready(u)
        yield from req.wait()
        return t_init

    coll = run_ranks(config, coll_main, nprocs=4).results
    out["pallreduce_init"] = sum(coll) / len(coll)
    return out
