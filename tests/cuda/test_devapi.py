"""Device-side actions: flag writes, atomics, copies, fences."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec
from repro.sim.resources import Counter, Flag
from repro.units import us

WORK = WorkSpec.vector_add()


def _run_body(engine, gpu, body, grid=1, block=64):
    def host():
        done = yield from gpu.launch_h(BlockKernel(grid, block, body))
        yield done

    engine.run(engine.process(host()))


def test_single_flag_write_cost(engine, gpu):
    p = gpu.fabric.config.params
    f = Flag(engine)
    stamps = {}

    def body(blk):
        t0 = blk.now
        yield blk.write_host_flag(f)
        stamps["dt"] = blk.now - t0

    _run_body(engine, gpu, body)
    assert f.is_set
    assert stamps["dt"] == pytest.approx(p.flag_write_host + p.flag_write_base)


def test_n_flag_writes_serialize(engine, gpu):
    p = gpu.fabric.config.params
    c = Counter(engine)
    stamps = {}

    def body(blk):
        t0 = blk.now
        yield blk.write_host_flags(32, c, amount=32)
        stamps["dt"] = blk.now - t0

    _run_body(engine, gpu, body)
    assert c.value == 32
    assert stamps["dt"] == pytest.approx(32 * p.flag_write_host + p.flag_write_base)


def test_flag_writes_from_blocks_contend_on_c2c(engine, gpu):
    """Two blocks' flag stores serialize on the C2C port."""
    p = gpu.fabric.config.params
    c = Counter(engine)
    ends = []

    def body(blk):
        yield blk.write_host_flag(c)
        ends.append(blk.now)

    _run_body(engine, gpu, body, grid=2)
    assert c.value == 2
    assert abs(ends[1] - ends[0]) == pytest.approx(p.flag_write_host)


def test_zero_writes_rejected(engine, gpu):
    def body(blk):
        yield blk.write_host_flags(0, Flag(engine))

    with pytest.raises(Exception):
        _run_body(engine, gpu, body)


def test_atomic_add_returns_new_value(engine, gpu):
    c = Counter(engine)
    values = []

    def body(blk):
        v = yield blk.atomic_add(c)
        values.append(v)

    _run_body(engine, gpu, body, grid=4)
    assert sorted(values) == [1, 2, 3, 4]


def test_kernel_copy_moves_data_and_fences(engine, fabric):
    gpu0, gpu1 = Device(fabric, 0), Device(fabric, 1)
    src = gpu0.alloc(64, fill=3.0)
    dst = gpu1.alloc(64)
    p = fabric.config.params
    stamps = {}

    def body(blk):
        t0 = blk.now
        yield blk.copy(src, dst)
        stamps["dt"] = blk.now - t0

    def host():
        done = yield from gpu0.launch_h(BlockKernel(1, 64, body))
        yield done

    engine = fabric.engine
    engine.run(engine.process(host()))
    assert np.all(dst.data == 3.0)
    wire = 64 * 8 / p.nvlink_bw + p.nvlink_latency
    assert stamps["dt"] == pytest.approx(wire + p.kc_fence_overhead)


def test_kernel_copy_requires_device_accessible(engine, gpu):
    from repro.hw.memory import Buffer, MemSpace

    hbuf = Buffer.alloc(8, space=MemSpace.HOST, node=0)

    def body(blk):
        yield blk.copy(gpu.alloc(8), hbuf)

    with pytest.raises(Exception):
        _run_body(engine, gpu, body)


def test_copy_posted_without_yield_overlaps(engine, fabric):
    """A body may post a copy and continue (stores are posted)."""
    gpu0, gpu1 = Device(fabric, 0), Device(fabric, 1)
    src, dst = gpu0.alloc(1 << 16, fill=1.0), gpu1.alloc(1 << 16)
    marks = {}

    def body(blk):
        ev = blk.copy(src, dst)  # posted, not yielded
        marks["posted_at"] = blk.now
        yield blk.syncthreads()
        marks["continued_at"] = blk.now
        yield ev
        marks["copy_done"] = blk.now

    def host():
        done = yield from gpu0.launch_h(BlockKernel(1, 64, body))
        yield done

    fabric.engine.run(fabric.engine.process(host()))
    assert marks["continued_at"] - marks["posted_at"] < 0.1 * us
    assert marks["copy_done"] > marks["continued_at"]


def test_wait_flag_device_binding(engine, gpu):
    f = Flag(engine)
    got = {}

    def body(blk):
        yield blk.wait_flag(f)
        got["t"] = blk.now

    def setter():
        yield engine.timeout(5 * us)
        f.set()

    engine.process(setter())
    _run_body(engine, gpu, body)
    assert got["t"] == pytest.approx(5 * us)
