"""UCX-like communication substrate (UCP layer).

Implements the subset of UCP the paper's design builds on (Section II-C,
IV-A):

* :class:`UcpContext` / :class:`UcpWorker` — communication contexts with a
  progress engine and addressable workers;
* :class:`UcpEndpoint` — addresses a remote worker; carries RMA puts and
  active messages;
* ``mem_map`` / ``rkey_pack`` / ``rkey_unpack`` — memory registration and
  remote keys;
* ``rkey_ptr`` — the cuda_ipc-transport mapped pointer the paper exposes to
  GPUs for the Kernel-Copy path (their UCX modification of
  ``uct_cuda_ipc_rkey_ptr``);
* ``put_nbx`` — RMA put with a completion callback, the primitive under
  ``MPI_Pready``.

Unlike real UCX, transfers progress autonomously in the simulation; the
latency a real polling progress loop adds is charged via the
``progress_poll_latency`` parameter where the design depends on it.
"""

from repro.ucx.context import UcpContext, UcpWorker, WorkerAddress
from repro.ucx.endpoint import UcpEndpoint
from repro.ucx.memreg import MemHandle, RemoteKey, UcxMemError

__all__ = [
    "MemHandle",
    "RemoteKey",
    "UcpContext",
    "UcpEndpoint",
    "UcpWorker",
    "UcxMemError",
    "WorkerAddress",
]
