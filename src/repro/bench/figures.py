"""One generator per paper exhibit: run the workload, return a Series.

These are the canonical entry points used by the ``benchmarks/`` pytest
targets and by ``examples/``; EXPERIMENTS.md records their output against
the paper's reported values.  Grid sweeps default to a decimated version
of the paper's axes so a full regeneration stays in CI-friendly time;
pass explicit ``grids=``/``multipliers=`` for denser sweeps.

Since PR 8 this module is a shim: the series builders live in
:mod:`repro.workload.exhibits` as registered Workloads, so the same
exhibits also run under ``python -m repro sweep`` on arbitrary machines.
Each ``figN(...)`` below runs the workload on its canonical paper machine
and returns the bare :class:`~repro.bench.series.Series`, exactly as
before the refactor (outputs pinned by
``tests/workload/test_equivalence.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.series import Series
from repro.workload.exhibits import (
    FIG1011_GRIDS,
    FIG2_GRIDS,
    FIG3_THREADS,
    FIG45_GRIDS,
    FIG67_GRIDS,
    FIG89_MULTIPLIERS,
)
from repro.workload.registry import get as _get_workload


def _run(name: str, **params) -> Series:
    return _get_workload(name).run(**params).series


def fig2(grids: Sequence[int] = FIG2_GRIDS) -> Series:
    """Fig 2: cudaStreamSynchronize cost vs kernel launch+sync."""
    return _run("fig2", grids=grids)


def fig3(threads: Sequence[int] = FIG3_THREADS) -> Series:
    """Fig 3: MPIX_Pready cost for thread/warp/block mappings."""
    return _run("fig3", threads=threads)


def fig4(grids: Sequence[int] = FIG45_GRIDS) -> Series:
    """Fig 4: intra-node goodput — Kernel Copy vs Progression Engine vs Send/Recv."""
    return _run("fig4", grids=grids)


def fig5(grids: Sequence[int] = FIG45_GRIDS) -> Series:
    """Fig 5: inter-node goodput — Partitioned (PE) vs Send/Recv."""
    return _run("fig5", grids=grids)


def fig6(grids: Sequence[int] = FIG67_GRIDS) -> Series:
    """Fig 6: allreduce on four GH200 (one node)."""
    return _run("fig6", grids=grids)


def fig7(grids: Sequence[int] = FIG67_GRIDS[:-1]) -> Series:
    """Fig 7: allreduce on eight GH200 (two nodes, ranks 0-3 / 4-7 per node)."""
    return _run("fig7", grids=grids)


def table1() -> Series:
    """Table I: overheads of the partitioned API calls."""
    return _run("table1")


def fig8(multipliers: Sequence[int] = FIG89_MULTIPLIERS, iters: int = 150, base_tile: int = 16) -> Series:
    """Fig 8: Jacobi GFLOP/s on four GH200 (2x2 decomposition)."""
    return _run("fig8", multipliers=multipliers, iters=iters, base_tile=base_tile)


def fig9(multipliers: Sequence[int] = FIG89_MULTIPLIERS, iters: int = 150, base_tile: int = 16) -> Series:
    """Fig 9: Jacobi GFLOP/s on eight GH200 (4x2 decomposition)."""
    return _run("fig9", multipliers=multipliers, iters=iters, base_tile=base_tile)


def fig10(grids: Sequence[int] = FIG1011_GRIDS) -> Series:
    """Fig 10: DL kernel on four GH200."""
    return _run("fig10", grids=grids)


def fig11(grids: Sequence[int] = FIG1011_GRIDS) -> Series:
    """Fig 11: DL kernel on eight GH200."""
    return _run("fig11", grids=grids)


ALL_EXHIBITS = {
    "fig2": fig2, "fig3": fig3, "fig4": fig4, "fig5": fig5,
    "fig6": fig6, "fig7": fig7, "table1": table1,
    "fig8": fig8, "fig9": fig9, "fig10": fig10, "fig11": fig11,
}
