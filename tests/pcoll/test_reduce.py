"""Partitioned reduce: binomial and flat (multi-incoming) schedules."""

import numpy as np
import pytest

from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MAX, NOP, SUM
from repro.mpi.world import World
from repro.pcoll.tree import binomial_reduce_schedule, flat_reduce_schedule


def _job(P, algorithm, root=0, op=SUM, U=4, chunk=32, config=None):
    config = config or (ONE_NODE if P <= 4 else PAPER_TESTBED)
    n = U * chunk

    def main(ctx):
        comm = ctx.comm
        buf = ctx.gpu.alloc(n, fill=float(ctx.rank + 1))
        req = yield from comm.preduce_init(
            buf, partitions=U, op=op, root=root, algorithm=algorithm
        )
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(U):
            yield from req.pready(u)
        yield from req.wait()
        return buf.data.copy()

    return World(config).run(main, nprocs=P)


@pytest.mark.parametrize("algorithm", ["binomial", "flat"])
@pytest.mark.parametrize("P", [2, 3, 4])
def test_reduce_sum_at_root(algorithm, P):
    res = _job(P, algorithm)
    assert np.all(res[0] == sum(range(1, P + 1)))


@pytest.mark.parametrize("algorithm", ["binomial", "flat"])
def test_reduce_nonzero_root(algorithm):
    res = _job(4, algorithm, root=3)
    assert np.all(res[3] == 10.0)


def test_reduce_max_op():
    res = _job(4, "flat", op=MAX)
    assert np.all(res[0] == 4.0)


def test_reduce_eight_ranks_binomial():
    res = _job(8, "binomial", root=5)
    assert np.all(res[5] == 36.0)


def test_flat_schedule_has_multi_incoming_step():
    """The flat root step carries all P-1 incoming neighbours at once."""
    s = flat_reduce_schedule(0, 8, SUM, root=0)
    assert len(s.steps) == 1
    assert len(s.steps[0].incoming) == 7
    assert s.steps[0].op is SUM
    leaf = flat_reduce_schedule(3, 8, SUM, root=0)
    assert leaf.steps[0].outgoing == (0,)
    assert leaf.steps[0].op is NOP


def test_binomial_schedule_structure():
    """Root receives log2(P) children over the rounds; leaves send once."""
    root = binomial_reduce_schedule(0, 8, SUM, root=0)
    assert root.all_outgoing() == []
    assert sorted(root.all_incoming()) == [1, 2, 4]
    leaf = binomial_reduce_schedule(7, 8, SUM, root=0)
    assert leaf.all_incoming() == []
    assert leaf.all_outgoing() == [6]  # 7 sends to 6 in round 0


def test_binomial_send_after_receives():
    """Rank 4 of 8 receives 5 and 6 before sending to 0 (round order)."""
    s = binomial_reduce_schedule(4, 8, SUM, root=0)
    rounds = [(st.incoming, st.outgoing) for st in s.steps]
    assert rounds[0] == ((5,), ())
    assert rounds[1] == ((6,), ())
    assert rounds[2] == ((), (0,))


def test_unknown_algorithm_rejected():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.preduce_init(ctx.gpu.alloc(16), 2, algorithm="magic")
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_reduce_random_payload_matches_numpy():
    rng = np.random.default_rng(7)
    n = 4 * 32
    inputs = {r: rng.standard_normal(n) for r in range(4)}

    def main(ctx):
        comm = ctx.comm
        buf = ctx.gpu.alloc(n)
        buf.data[:] = inputs[ctx.rank]
        req = yield from comm.preduce_init(buf, partitions=4, algorithm="binomial")
        yield from req.start()
        yield from req.pbuf_prepare()
        for u in range(4):
            yield from req.pready(u)
        yield from req.wait()
        return buf.data.copy()

    res = World(ONE_NODE).run(main, nprocs=4)
    assert np.allclose(res[0], sum(inputs.values()))
