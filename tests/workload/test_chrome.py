"""Chrome-trace export -> replay schedule -> matching byte ledgers.

The dataplane emits one ``cat="dataplane"`` instant per accounted
descriptor; ``from_chrome`` rebuilds an ``xfer`` schedule from exactly
those events, so replaying the schedule on the same machine must
reproduce the original run's per-class ledger byte and transfer counts.
"""

from repro.hw.params import ONE_NODE
from repro.obs.bus import Bus, install, uninstall
from repro.obs.chrome import ChromeTraceExporter, validate_trace
from repro.workload import get
from repro.workload.replay import ReplayWorkload, from_chrome


def _traced_pingpong():
    bus = Bus()
    exporter = ChromeTraceExporter()
    bus.subscribe(exporter)
    install(bus)
    try:
        result = get("pingpong").run()
    finally:
        uninstall()
    return result, exporter.to_obj()


def test_chrome_round_trip_preserves_class_ledgers():
    original, trace = _traced_pingpong()
    validate_trace(trace)
    sched = from_chrome(trace)
    assert sched.has_op("xfer")
    replayed = ReplayWorkload(sched).run(machine=ONE_NODE)
    assert set(replayed.class_bytes) == set(original.class_bytes)
    for cls, pinned in original.class_bytes.items():
        got = replayed.class_bytes[cls]
        assert got["bytes"] == pinned["bytes"], cls
        assert got["transfers"] == pinned["transfers"], cls


def test_chrome_round_trip_schedule_is_stable():
    _, trace = _traced_pingpong()
    a = from_chrome(trace)
    b = from_chrome(trace)
    assert a.digest == b.digest
