"""Striping exhibit: single-path vs multi-path D2D goodput crossover.

Claims asserted here (DESIGN.md §12):

* below ``MultiPathPolicy.min_stripe_bytes`` the striped plan coincides
  with the single-path plan (speedup exactly 1.0, one stripe);
* the largest intra-node point stripes across >= 2 link-disjoint routes
  and gains >= 1.5x goodput (GH200 mesh: direct NVLink + two NVLink
  detours + the C2C host path);
* single-path goodput respects the 150 GB/s NVLink unidirectional bound
  while the striped aggregate exceeds it;
* the speedup grows monotonically with size once striping engages
  (per-stripe overheads amortize away).
"""

from conftest import run_exhibit, within

from repro.dataplane.bench import stripe_sweep


def test_striping_crossover(benchmark):
    series = run_exhibit(benchmark, stripe_sweep)

    small = series.rows[0]
    assert small["stripes"] == 1, "64 KiB must not stripe (min_stripe_bytes)"
    assert small["speedup"] == 1.0, "unstriped plan must be byte-identical"

    large = series.rows[-1]
    assert large["stripes"] >= 2, "largest point must find link-disjoint routes"
    within(large["speedup"], 1.5, 8.0, "striped speedup at the largest point")
    assert large["single_GBps"] <= 150.0, "single path bound by one NVLink"
    assert large["multi_GBps"] > 150.0, "stripes must beat the single-link bound"

    engaged = [r["speedup"] for r in series.rows if r["stripes"] > 1]
    assert engaged == sorted(engaged), "speedup must grow as overheads amortize"
