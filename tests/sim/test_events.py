"""Event primitives: triggering, callbacks, AllOf/AnyOf combinators."""

import pytest

from repro.sim.events import AllOf, AnyOf, Event


def test_event_lifecycle(engine):
    ev = engine.event()
    assert not ev.triggered and not ev.processed
    ev.succeed(42)
    assert ev.triggered and not ev.processed
    engine.run()
    assert ev.processed and ev.ok and ev.value == 42


def test_value_before_trigger_raises(engine):
    with pytest.raises(RuntimeError):
        _ = engine.event().value


def test_double_trigger_rejected(engine):
    ev = engine.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(RuntimeError("x"))


def test_fail_requires_exception(engine):
    with pytest.raises(TypeError):
        engine.event().fail("not an exception")


def test_fail_propagates_to_waiter(engine):
    ev = engine.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "handled"

    proc = engine.process(waiter())
    ev.fail(ValueError("boom"))
    assert engine.run(proc) == "handled"


def test_callback_after_processed_runs_immediately(engine):
    ev = engine.event()
    ev.succeed("x")
    engine.run()
    got = []
    ev.add_callback(lambda e: got.append(e.value))
    assert got == ["x"]


def test_allof_collects_values_in_order(engine):
    def worker(delay, value):
        yield engine.timeout(delay)
        return value

    procs = [engine.process(worker(d, v)) for d, v in ((3, "a"), (1, "b"), (2, "c"))]

    def main():
        return (yield AllOf(engine, procs))

    assert engine.run(engine.process(main())) == ["a", "b", "c"]
    assert engine.now == 3


def test_allof_empty_fires_immediately(engine):
    cond = AllOf(engine, [])
    assert cond.triggered
    assert engine.run(cond) == []


def test_allof_fails_fast(engine):
    def bad():
        yield engine.timeout(1)
        raise RuntimeError("dead")

    def slow():
        yield engine.timeout(100)

    cond = AllOf(engine, [engine.process(bad()), engine.process(slow())])

    def main():
        with pytest.raises(RuntimeError, match="dead"):
            yield cond
        return engine.now

    assert engine.run(engine.process(main())) == 1.0


def test_anyof_first_wins(engine):
    def worker(delay, value):
        yield engine.timeout(delay)
        return value

    cond = AnyOf(engine, [engine.process(worker(5, "slow")), engine.process(worker(1, "fast"))])

    def main():
        return (yield cond)

    assert engine.run(engine.process(main())) == "fast"
    assert engine.now == 1.0


def test_condition_rejects_foreign_engine(engine):
    from repro.sim.engine import Engine

    other = Engine()
    with pytest.raises(ValueError):
        AllOf(engine, [other.event()])


def test_anyof_with_pretriggered_event(engine):
    ev = engine.event()
    ev.succeed("now")
    cond = AnyOf(engine, [ev, engine.event()])

    def main():
        return (yield cond)

    assert engine.run(engine.process(main())) == "now"
