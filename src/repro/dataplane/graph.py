"""Captured transfer graphs: price once, replay as one submission.

The eager dataplane pays full per-descriptor work on every submit —
``validate()`` geometry checks, fabric route resolution, policy stripe
planning — and the host engine pops one heap event per descriptor stage.
Workloads that replay the *identical* transfer sequence thousands of
times (Jacobi halo exchanges, LLM dp/tp/pp training steps) re-derive the
same routes and stripe plans every iteration.  This module removes both
costs, mirroring CUDA stream capture + graph launch:

``PlanCache``
    Descriptor-identity -> pre-resolved stripe plan.  The first submit
    of a (src, dst, bytes, class) shape validates, routes, and stripes
    as usual and records the plan; every later submit replays the cached
    stripes without touching the route search or the policy.  Ledger
    accounting still happens per submission, so per-class byte totals
    are identical to the eager path.

``GraphEngine``
    An :class:`~repro.sim.engine.Engine` whose pops are accounted as
    ``events_graphed`` instead of ``events_popped``.  A captured replay
    runs the *same* simulation generators on a private GraphEngine — so
    every timestamp, tie-break, and digest is bit-identical by
    construction — while the host-visible engine sees a single
    graph-launch event per replayed window.  The work does not vanish:
    it moves off the host heap into the graph executor, exactly the way
    a real CUDA graph moves launch work off the CPU.

``TransferGraph``
    The stream-capture record: ops enqueued on a simulated CUDA stream
    between ``begin_capture`` / ``end_capture`` are recorded (not
    executed, CUDA semantics) and later replayed by one
    ``graph_launch`` stream op per iteration (:mod:`repro.cuda.stream`).

The ``REPRO_NO_GRAPHS`` environment variable (any non-empty value)
forces the eager path everywhere — the A/B knob CI uses to assert that
simulated times and SHA-256 digests are unchanged by capture.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import bus as obs_bus
from repro.sim.engine import STATS, Engine


class GraphError(RuntimeError):
    """An invalid capture: cross-stream dependency, freed buffer, misuse."""


def graphs_enabled() -> bool:
    """True when capture/replay fast paths may run (DESIGN.md §16).

    Graph replay collapses host-visible pops, so — like coalescing
    (DESIGN.md §11) — it is only legal when nothing observes individual
    host pops: no ambient obs bus (its presence arms record hooks even
    before a subscriber appears).  Engine-local observers (``obs`` /
    ``on_step``) are checked by the call sites that own the engines.
    ``REPRO_NO_GRAPHS`` forces the eager path for A/B equivalence runs.
    """
    return (
        obs_bus._AMBIENT is None
        and not os.environ.get("REPRO_NO_GRAPHS")
    )


class GraphCounters:
    """Process-wide capture/replay counters (reset per bench entry)."""

    __slots__ = ("launches", "captured_plans", "replayed_descriptors", "replanned")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Graph-launch submissions (one per replayed window / iteration).
        self.launches = 0
        #: Plan-cache misses: descriptors validated + routed + striped.
        self.captured_plans = 0
        #: Plan-cache hits: descriptors replayed from a pre-priced plan.
        self.replayed_descriptors = 0
        #: Epoch-stale plans cheaply re-bound (re-routed dead legs only,
        #: no re-validate / re-price) after a fabric mutation.
        self.replanned = 0

    def snapshot(self) -> dict:
        return {
            "launches": self.launches,
            "captured_plans": self.captured_plans,
            "replayed_descriptors": self.replayed_descriptors,
            "replanned": self.replanned,
        }


#: Module-level accumulator (single-process paths; the sharded executor
#: reports per-shard counts through the cluster signature instead).
GRAPHS = GraphCounters()


class GraphEngine(Engine):
    """A private engine whose pops count as ``events_graphed``.

    Subclassing keeps every scheduling semantic — heap ordering,
    ``(time, priority, seq)`` tie-breaks, pooled timeouts, horizon
    clamping — literally the same code, so a simulation moved onto a
    GraphEngine reproduces the eager event stream bit-for-bit.  Only the
    stats flush differs: pops land in :data:`~repro.sim.engine.STATS`
    as ``events_graphed``, keeping ``events_popped`` an honest count of
    host-heap traffic.
    """

    __slots__ = ()

    def _flush_stats(self) -> None:
        flushed = self._flushed
        STATS.events_graphed += self.events_popped - flushed[0]
        STATS.events_coalesced += self.events_coalesced - flushed[1]
        STATS.events_cancelled += self.events_cancelled - flushed[2]
        if self.peak_heap > STATS.peak_heap:
            STATS.peak_heap = self.peak_heap
        flushed[0] = self.events_popped
        flushed[1] = self.events_coalesced
        flushed[2] = self.events_cancelled


# --------------------------------------------------------------------------
# dataplane plan cache
# --------------------------------------------------------------------------

class PlanCache:
    """Descriptor identity -> pre-resolved stripe plan.

    The key is endpoint *object* identity plus wire shape: two submits
    hit the same plan only when they name the same live buffers with the
    same byte-count, payload mode, and traffic class — exactly the
    repeated-iteration case.  Stripes are pure (route tuple, byte count,
    completion callback over the same buffers), so replaying them is
    equivalent to re-planning; tests pin that equivalence.

    Captured plans pin their endpoint buffers: replaying a plan whose
    buffer has been freed since capture raises :class:`GraphError` (the
    hazard the ``graph-capture-mutation`` analyzer rule flags statically).

    Plans are **epoch-stamped** (DESIGN.md §17): a plan captured under
    fabric epoch E replays unchecked while the epoch still reads E.  After
    a link mutation bumps the epoch, the next lookup *re-binds* the plan
    ``cudaGraphExecUpdate``-style: stripes whose routes are fully up keep
    their routes and prices untouched; stripes crossing a downed link are
    re-routed through the (epoch-fresh) fabric route — no re-validation
    and no re-pricing of unchanged legs.  Bandwidth degradation never
    invalidates a leg because stripes price bandwidth at port-grant time.
    A plan whose dead leg has no surviving route is dropped (full re-plan
    on this submission; the guarded executor may still fault it).
    """

    __slots__ = ("_plans", "hits", "misses")

    def __init__(self) -> None:
        self._plans: Dict[Tuple, Tuple[Any, tuple, int]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(desc) -> Tuple:
        return (
            id(desc.src), id(desc.dst), desc.nbytes,
            desc.payload, desc.traffic_class,
        )

    def lookup(self, desc, fabric=None) -> Optional[tuple]:
        """Cached stripes for ``desc``, or None on miss (then validate).

        ``fabric`` enables the epoch check; without it (legacy callers)
        plans replay as captured — correct on a never-mutated fabric.
        """
        key = self._key(desc)
        entry = self._plans.get(key)
        if entry is None:
            return None
        wire_bytes, stripes, epoch = entry
        for buf in (desc.src, desc.dst):
            if getattr(buf, "freed", False):
                raise GraphError(
                    f"{desc.name}: captured plan references freed buffer "
                    f"{buf.label!r} — re-capture after freeing endpoints"
                )
        if fabric is not None and epoch != fabric.link_state.epoch:
            stripes = self._rebind(key, desc, stripes, fabric)
            if stripes is None:
                return None
        desc.wire_bytes = wire_bytes
        self.hits += 1
        GRAPHS.replayed_descriptors += 1
        return stripes

    def _rebind(self, key, desc, stripes, fabric) -> Optional[tuple]:
        """Re-route dead legs of an epoch-stale plan; None drops the plan."""
        from repro.hw.topology import RouteError

        rebound = []
        moved = 0
        for stripe in stripes:
            if all(link.up for link in stripe.route):
                rebound.append(stripe)
                continue
            try:
                fresh = fabric.route(desc.src, desc.dst)
            except RouteError:
                del self._plans[key]
                return None
            rebound.append(type(stripe)(fresh, stripe.nbytes, stripe.on_wire_done))
            moved += 1
        stripes = tuple(rebound)
        self._plans[key] = (self._plans[key][0], stripes, fabric.link_state.epoch)
        GRAPHS.replanned += 1
        obs = fabric.engine.obs
        if obs is not None:
            obs.instant(
                "plan", "rebind", t=fabric.engine.now, xfer=desc.name,
                epoch=fabric.link_state.epoch, legs_moved=moved,
                legs_kept=len(stripes) - moved,
            )
        return stripes

    def store(self, desc, stripes: tuple, fabric=None) -> None:
        epoch = fabric.link_state.epoch if fabric is not None else 0
        self._plans[self._key(desc)] = (desc.wire_bytes, tuple(stripes), epoch)
        self.misses += 1
        GRAPHS.captured_plans += 1
        if fabric is not None:
            obs = fabric.engine.obs
            if obs is not None:
                obs.instant(
                    "plan", "build", t=fabric.engine.now, xfer=desc.name,
                    epoch=epoch, stripes=len(stripes),
                )


# --------------------------------------------------------------------------
# stream capture record
# --------------------------------------------------------------------------

class _GraphOp:
    """One captured stream op: a generator factory plus provenance."""

    __slots__ = ("make", "label", "buffers")

    def __init__(self, make, label: str, buffers: tuple) -> None:
        self.make = make
        self.label = label
        self.buffers = buffers


class TransferGraph:
    """Ops recorded between ``begin_capture`` and ``end_capture``.

    The capture belongs to one stream; per CUDA capture-mode-global
    semantics, work enqueued on any *other* stream of the same device
    while the capture is open is a cross-stream dependency the capture
    cannot represent, and raises :class:`GraphError`.  ``launch`` replays
    the recorded ops in record order as one stream op.
    """

    __slots__ = ("stream", "ops", "sealed", "launches")

    def __init__(self, stream) -> None:
        self.stream = stream
        self.ops: List[_GraphOp] = []
        self.sealed = False
        self.launches = 0

    def add(self, make, label: str, buffers: tuple = ()) -> None:
        if self.sealed:
            raise GraphError(
                f"graph on {self.stream.name}: cannot record into a sealed "
                "capture — begin a new capture instead"
            )
        self.ops.append(_GraphOp(make, label, buffers))

    def seal(self) -> "TransferGraph":
        if not self.ops:
            raise GraphError(
                f"graph on {self.stream.name}: empty capture — no ops were "
                "enqueued between begin_capture and end_capture"
            )
        self.sealed = True
        return self

    def check_buffers(self) -> None:
        """Raise if any captured endpoint buffer was freed since capture."""
        for op in self.ops:
            for buf in op.buffers:
                if getattr(buf, "freed", False):
                    raise GraphError(
                        f"graph on {self.stream.name}: op {op.label!r} "
                        f"references freed buffer {buf.label!r} — freeing a "
                        "captured buffer invalidates the graph"
                    )
