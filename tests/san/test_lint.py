"""The AST lint: determinism, unit-literal, and dropped-return invariants."""

from pathlib import Path

from repro.san.lint import lint_source, main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _checks(findings):
    return [f.check for f in findings]


# -- wallclock ---------------------------------------------------------------

def test_wallclock_call_flagged():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert "wallclock" in _checks(lint_source(src, "sim/x.py"))


def test_random_module_flagged():
    src = "import random\n\ndef f():\n    return random.random()\n"
    findings = lint_source(src, "sim/x.py")
    assert _checks(findings).count("wallclock") >= 1


def test_numpy_random_flagged():
    src = "import numpy as np\n\ndef f():\n    return np.random.rand()\n"
    assert "wallclock" in _checks(lint_source(src, "sim/x.py"))


def test_wallclock_unscoped_files_exempt():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert lint_source(src, "bench/x.py", scoped=False) == []


def test_engine_now_is_fine():
    src = "def f(engine):\n    return engine.now\n"
    assert lint_source(src, "sim/x.py") == []


# -- raw-units ---------------------------------------------------------------

def test_raw_unit_float_flagged():
    src = "LATENCY = 7.8 * 1e-6\n"
    findings = lint_source(src, "cuda/x.py")
    assert _checks(findings) == ["raw-units"]
    assert "repro.units.us" in findings[0].message


def test_raw_unit_pow_flagged():
    src = "SIZE = 4 * 1024 ** 2\n"
    findings = lint_source(src, "cuda/x.py")
    assert _checks(findings) == ["raw-units"]
    assert "MiB" in findings[0].message


def test_non_unit_literals_pass():
    src = "X = 0.5\nY = 1024\nZ = 2e-5\n"
    assert lint_source(src, "cuda/x.py") == []


# -- dropped-return ----------------------------------------------------------

DROPPED = """
def worker():
    yield 1
    return 42

def spawn(engine):
    engine.process(worker())
"""

BOUND = """
def worker():
    yield 1
    return 42

def spawn(engine):
    ev = engine.process(worker())
    return ev
"""

NO_VALUE = """
def worker():
    yield 1

def spawn(engine):
    engine.process(worker())
"""


def test_dropped_return_flagged():
    findings = lint_source(DROPPED, "sim/x.py")
    assert _checks(findings) == ["dropped-return"]
    assert "'worker'" in findings[0].message


def test_bound_process_event_passes():
    assert lint_source(BOUND, "sim/x.py") == []


def test_valueless_body_passes():
    assert lint_source(NO_VALUE, "sim/x.py") == []


# -- obs-bypass --------------------------------------------------------------

def test_print_in_core_flagged():
    src = "def f(x):\n    print(x)\n"
    findings = lint_source(src, "sim/x.py")
    assert _checks(findings) == ["obs-bypass"]
    assert "repro.obs" in findings[0].message


def test_trace_log_append_flagged():
    src = "def f(engine, msg):\n    engine.trace_log.append((0.0, msg))\n"
    findings = lint_source(src, "mpi/x.py")
    assert _checks(findings) == ["obs-bypass"]


def test_cli_modules_may_print():
    src = "def main():\n    print('report')\n"
    assert lint_source(src, "hw/spec/cli.py") == []


def test_print_outside_core_passes():
    src = "def f(x):\n    print(x)\n"
    assert lint_source(src, "bench/x.py", scoped=False) == []


def test_other_append_calls_pass():
    src = "def f(items, x):\n    items.append(x)\n"
    assert lint_source(src, "sim/x.py") == []


# -- eager-obs-payload -------------------------------------------------------

EAGER = """
def f(engine, x):
    engine.trace(f"value={x}")
"""

GUARDED = """
def f(engine, x):
    obs = engine.obs
    if obs is not None:
        obs.instant("lane", f"value={x}", ("gpu", 0))
"""

GUARDED_DOTTED = """
def f(self, x):
    if self.engine.obs is not None:
        self.engine.obs.instant("lane", f"value={x}", ("gpu", 0))
"""

EAGER_KWARG = """
def f(obs, x):
    obs.span("lane", "name", ("gpu", 0), 0.0, 1.0, detail=f"x={x}")
"""

PLAIN_PAYLOAD = """
def f(engine, x):
    engine.trace("launch", grid=x)
"""

ELSE_BRANCH = """
def f(engine, x):
    if engine.obs is not None:
        pass
    else:
        engine.trace(f"value={x}")
"""


def test_eager_fstring_trace_flagged():
    findings = lint_source(EAGER, "sim/x.py")
    assert _checks(findings) == ["eager-obs-payload"]
    assert "f-string" in findings[0].message


def test_guarded_fstring_passes():
    assert lint_source(GUARDED, "cuda/x.py") == []


def test_guarded_dotted_obs_passes():
    assert lint_source(GUARDED_DOTTED, "mpi/x.py") == []


def test_eager_fstring_kwarg_flagged():
    assert _checks(lint_source(EAGER_KWARG, "sim/x.py")) == ["eager-obs-payload"]


def test_plain_payload_passes():
    assert lint_source(PLAIN_PAYLOAD, "sim/x.py") == []


def test_else_branch_not_guarded():
    assert _checks(lint_source(ELSE_BRANCH, "sim/x.py")) == ["eager-obs-payload"]


def test_eager_rule_unscoped_files_exempt():
    assert lint_source(EAGER, "bench/x.py", scoped=False) == []


# -- fabric-bypass -----------------------------------------------------------

def test_direct_start_transfer_flagged():
    src = (
        "from repro.hw.links import start_transfer\n\n"
        "def f(engine, route, n):\n"
        "    return start_transfer(engine, route, n, name='x')\n"
    )
    findings = lint_source(src, "ucx/x.py", scoped=False)
    assert _checks(findings) == ["fabric-bypass", "fabric-bypass"]
    assert "dataplane" in findings[0].message


def test_legacy_fabric_transfer_flagged():
    src = "def f(rt, a, b):\n    return rt.fabric.transfer(a, b, name='x')\n"
    findings = lint_source(src, "mpi/x.py")
    assert _checks(findings) == ["fabric-bypass"]
    assert "rt.fabric.transfer" in findings[0].message


def test_legacy_fabric_shims_flagged_outside_core_packages():
    # Producers outside CORE_PACKAGES (ucx, pcoll, nccl) are not exempt.
    src = (
        "def f(self, a, b, n):\n"
        "    self.fabric.host_initiated_transfer(a, b)\n"
        "    self.fabric.transfer_bytes(a, b, n)\n"
    )
    findings = lint_source(src, "ucx/x.py", scoped=False)
    assert _checks(findings) == ["fabric-bypass", "fabric-bypass"]


def test_dataplane_submission_passes():
    src = (
        "def f(rt, a, b, n):\n"
        "    rt.fabric.dataplane.put(a, b, traffic_class='coll', name='x')\n"
        "    rt.fabric.dataplane.rma_put(a, b)\n"
        "    return rt.fabric.dataplane.control(a, b, n)\n"
    )
    assert lint_source(src, "mpi/x.py") == []


def test_dataplane_and_hw_modules_exempt():
    src = (
        "from repro.hw.links import start_transfer\n\n"
        "def f(engine, route, n):\n"
        "    return start_transfer(engine, route, n, name='x')\n"
    )
    assert lint_source(src, "dataplane/plane.py", scoped=False) == []
    assert lint_source(src, "hw/topology.py", scoped=False) == []


def test_unrelated_transfer_methods_pass():
    # .transfer on a non-fabric receiver is someone else's API.
    src = "def f(bank, a, b):\n    return bank.transfer(a, b)\n"
    assert lint_source(src, "mpi/x.py") == []


# -- workload-bypass ---------------------------------------------------------

def test_direct_world_construction_flagged():
    src = (
        "from repro.mpi.world import World\n\n"
        "def f(cfg, main):\n"
        "    return World(cfg).run(main, nprocs=2)\n"
    )
    findings = lint_source(src, "bench/x.py", scoped=False)
    assert _checks(findings) == ["workload-bypass"]
    assert "run_ranks" in findings[0].message


def test_direct_cluster_job_flagged():
    src = (
        "from repro.shard import ClusterJob\n\n"
        "def f(spec):\n"
        "    return ClusterJob(spec, 'halo').run()\n"
    )
    findings = lint_source(src, "perf/x.py", scoped=False)
    assert _checks(findings) == ["workload-bypass"]


def test_attribute_launcher_flagged():
    src = "def f(mod, cfg):\n    return mod.World(cfg)\n"
    findings = lint_source(src, "bench/x.py", scoped=False)
    assert _checks(findings) == ["workload-bypass"]


def test_workload_owners_exempt_from_bypass():
    src = "from repro.mpi.world import World\n\ndef f(cfg):\n    return World(cfg)\n"
    assert lint_source(src, "workload/runner.py", scoped=False) == []
    assert lint_source(src, "mpi/world.py", scoped=False) == []
    assert lint_source(src, "shard/workloads.py", scoped=False) == []


def test_run_ranks_passes_bypass():
    src = (
        "from repro.workload import run_ranks\n\n"
        "def f(cfg, main):\n"
        "    return run_ranks(cfg, main, nprocs=2).results\n"
    )
    assert lint_source(src, "bench/x.py", scoped=False) == []


# -- shard-shared-state ------------------------------------------------------

def test_shard_internal_access_flagged():
    src = (
        "def f(shard, other_shard, shards, job):\n"
        "    shard.engine.run()\n"
        "    other_shard.mailbox.recv(0, 't')\n"
        "    shards[0].fabric.dataplane.put(None, None)\n"
        "    job.shard.bridge.drain()\n"
        "    shard._step_hash.update(b'x')\n"
    )
    findings = lint_source(src, "perf/x.py")
    assert _checks(findings).count("shard-shared-state") == 5


def test_shard_public_surface_passes():
    src = (
        "def f(shard):\n"
        "    shard.put(None, shard.remote(9, 8, 't'))\n"
        "    shard.recv(0, 't')\n"
        "    out = shard.step_window(1.0, [])\n"
        "    return shard.next_time(), shard.results(), shard.done\n"
    )
    assert lint_source(src, "perf/x.py") == []


def test_shard_package_modules_exempt():
    src = "def f(shard):\n    return shard.engine.peek()\n"
    assert lint_source(src, "shard/cluster.py", scoped=False) == []
    assert lint_source(src, "src/repro/shard/executor.py", scoped=False) == []


def test_non_shard_receivers_pass():
    # 'engine' etc. on receivers that are not shard-shaped are fine.
    src = (
        "def f(world, self):\n"
        "    world.engine.run()\n"
        "    return self.fabric.dataplane\n"
    )
    assert lint_source(src, "mpi/x.py") == []


# -- drivers -----------------------------------------------------------------

def test_seeded_wallclock_file_fails(tmp_path, capsys):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef now():\n    return time.time()\n")
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "wallclock" in out and "bad.py" in out


def test_seeded_file_outside_core_passes(tmp_path, capsys):
    ok = tmp_path / "repro" / "bench" / "timer.py"
    ok.parent.mkdir(parents=True)
    ok.write_text("import time\n\ndef now():\n    return time.time()\n")
    assert main([str(ok)]) == 0


def test_real_tree_is_clean(capsys):
    assert main([str(REPO_SRC)]) == 0
    assert "lint: 0 finding(s)" in capsys.readouterr().out
