"""The determinism contract: identical configs replay identical event
streams, guarding the engine's ``(time, priority, seq)`` heap tie-break."""

import hashlib

import numpy as np
import pytest

from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE, TestbedConfig
from repro.hw.spec import gh200_spec
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.san import Sanitizer

WORK = WorkSpec.vector_add()
GRID, BLOCK = 4, 256


def _workload(world):
    """Device-initiated partitioned send: dense same-time event traffic."""
    n = GRID * BLOCK

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, GRID, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            agg = AggregationSpec(GRID, BLOCK, 1, SignalMode.BLOCK)
            preq = yield from sreq.prequest_create(ctx.gpu, agg=agg)

            def body(blk):
                yield blk.compute(WORK)
                yield pdev.pready(blk, preq)

            yield from ctx.gpu.launch_h(BlockKernel(GRID, BLOCK, body))
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(n)
            rreq = yield from comm.precv_init(rbuf, GRID, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()
            assert np.all(rbuf.data == 1.0)

    world.run(main, nprocs=2)


def _step_stream():
    steps = []
    world = World(ONE_NODE)
    world.engine.on_step = lambda t, prio, seq: steps.append((t, prio, seq))
    _workload(world)
    return steps


def test_step_stream_is_reproducible():
    first, second = _step_stream(), _step_stream()
    assert first == second
    assert len(first) > 100


def test_tie_break_is_exercised():
    """Same-time pops must occur, else the (prio, seq) tie-break is dead code."""
    steps = _step_stream()
    times = [t for t, _prio, _seq in steps]
    assert len(set(times)) < len(times)


def test_sanitized_trace_is_byte_identical():
    def trace_bytes():
        with Sanitizer() as san:
            _workload(World(ONE_NODE))
        assert san.report.ok
        return san.trace_bytes()

    first, second = trace_bytes(), trace_bytes()
    assert first == second
    assert len(first) > 0


# Trace digests captured on the seed's hard-coded GH200 fabric, *before*
# the spec/graph-routing refactor.  The spec-built fabric must replay the
# exact same sanitized trace: the GH200 spec is a re-expression of the
# testbed, not a new machine.
_SEED_TRACES = {
    "one-node": "1c2027dffd6568bcd2ed94f2ab11c0c6e5ba3672eb561ad3a3a5f73e5ecb15b9",
    "two-node": "266920291c7279e88a131ad426dab16eef04061f20af149f2ec0d7a681c4ac3e",
}


@pytest.mark.parametrize(
    "config,key",
    [
        (ONE_NODE, "one-node"),
        (TestbedConfig(n_nodes=2, gpus_per_node=1), "two-node"),
        (gh200_spec(1, 4), "one-node"),
        (gh200_spec(2, 1), "two-node"),
    ],
    ids=["legacy-1x4", "legacy-2x1", "spec-1x4", "spec-2x1"],
)
def test_gh200_spec_trace_matches_pre_refactor_seed(config, key):
    """Legacy configs and the equivalent MachineSpecs replay the seed's
    byte-exact sanitized trace for a partitioned ping-pong."""
    with Sanitizer() as san:
        _workload(World(config))
    assert san.report.ok
    digest = hashlib.sha256(san.trace_bytes()).hexdigest()
    assert digest == _SEED_TRACES[key]


# -- the obs bus must be invisible ------------------------------------------
#
# The instrumentation refactor's contract: with a bus installed but *idle*
# (zero subscribers) every hook stays one `is None` test, and even a fully
# subscribed bus must never perturb the simulated timeline.

def test_sanitized_digest_unchanged_with_idle_ambient_bus():
    """An installed-but-subscriber-less bus leaves engine.obs None; the
    sanitizer (which rides the same bus) still reproduces the seed digest."""
    from repro.obs import bus as obs_bus

    obs_bus.install(obs_bus.Bus())
    try:
        with Sanitizer() as san:
            world = World(ONE_NODE)
            _workload(world)
    finally:
        obs_bus.uninstall()
    assert san.report.ok
    digest = hashlib.sha256(san.trace_bytes()).hexdigest()
    assert digest == _SEED_TRACES["one-node"]


def test_step_stream_unchanged_with_idle_bus():
    baseline = _step_stream()
    from repro.obs import bus as obs_bus

    bus = obs_bus.Bus()
    obs_bus.install(bus)
    try:
        world = World(ONE_NODE)
        assert world.engine.obs is None  # no subscribers: fast path intact
        steps = []
        world.engine.on_step = lambda t, prio, seq: steps.append((t, prio, seq))
        _workload(world)
    finally:
        obs_bus.uninstall()
    assert steps == baseline


def test_step_stream_unchanged_under_full_observation():
    """Subscribing a collector turns every hook on — and must not move a
    single event: observers read the timeline, never shape it."""
    baseline = _step_stream()
    from repro.obs import bus as obs_bus
    from repro.obs.profile import Collector

    bus = obs_bus.Bus()
    collector = Collector()
    bus.subscribe(collector)
    obs_bus.install(bus)
    try:
        world = World(ONE_NODE)
        assert world.engine.obs is bus
        steps = []
        world.engine.on_step = lambda t, prio, seq: steps.append((t, prio, seq))
        _workload(world)
    finally:
        obs_bus.uninstall()
    assert steps == baseline
    cats = {ev.cat for ev in collector.events}
    assert {"engine", "kernel", "link", "pe", "stream", "ucx", "san"} <= cats


# -- coalesced signalling must be invisible ----------------------------------
#
# The wall-clock fast path (DESIGN.md §11) collapses same-instant partition
# waves into aggregate events, but only when nothing observes the run.  The
# contract has two halves: unobserved runs land on byte-identical simulated
# times either way, and the REPRO_NO_COALESCE escape hatch never perturbs
# observed (step-hashed / sanitized) streams.

@pytest.mark.parametrize(
    "grid,model,tps",
    [
        (2048, "progression", 1),
        (4096, "progression", 8),   # multi-transport-partition crossings
        (2048, "kernel_copy", 2),
    ],
    ids=["pe-1tp", "pe-8tp", "kc-2tp"],
)
def test_unobserved_times_equal_with_and_without_coalescing(monkeypatch, grid, model, tps):
    """Goodput (a pure function of simulated timestamps) is bit-equal with
    wave coalescing on and off, and the fast path actually engaged."""
    from repro.bench.p2p import measure_p2p_goodput
    from repro.sim.engine import STATS

    monkeypatch.delenv("REPRO_NO_COALESCE", raising=False)
    STATS.reset()
    fast = measure_p2p_goodput(grid, model, ONE_NODE, tps=tps)
    fast_pops, fast_coalesced = STATS.events_popped, STATS.events_coalesced

    monkeypatch.setenv("REPRO_NO_COALESCE", "1")
    STATS.reset()
    exact = measure_p2p_goodput(grid, model, ONE_NODE, tps=tps)

    assert fast == exact  # bit-equal simulated times, not approximately
    assert fast_coalesced > 0, "fast path never engaged"
    assert STATS.events_coalesced == 0, "REPRO_NO_COALESCE did not disable it"
    assert fast_pops < STATS.events_popped


def test_step_stream_unchanged_by_no_coalesce_env(monkeypatch):
    """on_step observation already forces the exact path; the env knob must
    be inert on top of it — same (time, priority, seq) stream either way."""
    monkeypatch.delenv("REPRO_NO_COALESCE", raising=False)
    baseline = _step_stream()
    monkeypatch.setenv("REPRO_NO_COALESCE", "1")
    assert _step_stream() == baseline


def test_sanitized_digest_unchanged_by_no_coalesce_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_COALESCE", "1")
    with Sanitizer() as san:
        _workload(World(ONE_NODE))
    assert san.report.ok
    digest = hashlib.sha256(san.trace_bytes()).hexdigest()
    assert digest == _SEED_TRACES["one-node"]


def test_idle_hook_overhead_is_bounded():
    """Micro-benchmark: with no bus attached, Engine.trace (the cheapest
    hook shape: one attribute load + is-None test) stays in the tens-of-
    nanoseconds range.  The bound is generous to survive loaded CI boxes."""
    from time import perf_counter

    from repro.sim.engine import Engine

    eng = Engine()
    assert eng.obs is None
    n = 100_000
    t0 = perf_counter()
    for _ in range(n):
        eng.trace("idle")
    per_call = (perf_counter() - t0) / n
    assert per_call < 5e-6, f"idle hook costs {per_call * 1e9:.0f}ns/call"
