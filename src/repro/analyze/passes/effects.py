"""DES coroutine effect checking.

The engine's yield protocol (``sim/process.py``, ``Process._coerce``)
accepts exactly: an ``Event``, ``None`` (reschedule immediately), or a
non-negative number (a relative delay).  Anything else raises at *run*
time, on whichever seed happens to drive execution down that path.  This
pass finds the violations statically:

``effect-illegal-yield``
    A ``yield`` whose value can only be something the engine rejects —
    a string/bytes/container/f-string literal, a negative constant
    delay, a call of a *generator* helper (``yield g()`` hands the
    engine a generator object; the author meant ``yield from g()``), a
    ``yield from`` of a non-generator helper, or a call of a helper all
    of whose ``return`` statements produce such literals.  Checked over
    every generator the engine can drive: the bodies handed to
    ``.process(...)`` / ``.run(...)`` plus the transitive ``yield
    from`` closure — helper generators are checked once reachable.

``effect-leaked-waiter``
    An ``Event`` created and *subscribed* (``.add_callback``) inside a
    function, with a control-flow path from the creation to the
    function's exit that never consumes the event — no yield, no
    return, no store, no hand-off to another call, no
    ``succeed``/``fail``.  On that path the waiter can never fire its
    continuation: the exact bug class the PR-4 ``run(until=...)`` fix
    removed by hand, now caught by the CFG.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.cfg import map_statements
from repro.analyze.model import FunctionInfo, Project, dotted_name
from repro.analyze.rules import Finding, Pass, Rule

FAMILY = "effects"

ILLEGAL_YIELD = "effect-illegal-yield"
LEAKED_WAITER = "effect-leaked-waiter"

RULES: Dict[str, Rule] = {
    ILLEGAL_YIELD: Rule(
        ILLEGAL_YIELD, FAMILY,
        "a simulation process can only yield Event/None/non-negative "
        "delay — literal payloads, negative delays, and un-delegated "
        "generator calls raise at run time",
    ),
    LEAKED_WAITER: Rule(
        LEAKED_WAITER, FAMILY,
        "Event created and subscribed but some path reaches the function "
        "exit without the event ever being awaited, stored, or handed off",
    ),
}

#: Engine methods whose first argument is a process body.
_SPAWN_ATTRS = {"process", "run"}

#: The one use of a waiter that is pure subscription, not consumption.
_SUBSCRIBE_ATTRS = {"add_callback"}


# --------------------------------------------------------------------------
# effect lattice helpers
# --------------------------------------------------------------------------

def _illegal_literal(node: ast.AST) -> Optional[str]:
    """A human name for the value if the engine must reject it, else None."""
    if isinstance(node, ast.Constant):
        v = node.value
        if v is None or isinstance(v, bool):
            return None
        if isinstance(v, (int, float)):
            return "negative delay" if v < 0 else None
        return f"{type(v).__name__} literal"
    if isinstance(node, ast.JoinedStr):
        return "f-string"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list literal"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict literal"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set literal"
    if isinstance(node, ast.Tuple):
        return "tuple literal"
    if isinstance(node, ast.GeneratorExp):
        return "generator expression"
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, (int, float))
    ):
        return "negative delay"
    return None


def _illegal_returns(fi: FunctionInfo) -> Optional[str]:
    """If *every* valued ``return`` of ``fi`` is an illegal literal, say so."""
    kinds: List[str] = []
    for node in fi.owned():
        if isinstance(node, ast.Return) and node.value is not None:
            kind = _illegal_literal(node.value)
            if kind is None:
                return None  # at least one return might be legal
            kinds.append(kind)
    if not kinds:
        return None
    return kinds[0]


# --------------------------------------------------------------------------
# root discovery + yield-from closure
# --------------------------------------------------------------------------

def _process_roots(project: Project) -> List[FunctionInfo]:
    """Generators handed to ``.process(...)`` / ``.run(...)`` anywhere."""
    roots: List[FunctionInfo] = []
    seen: Set[FunctionInfo] = set()
    for fi in project.functions:
        for node in fi.owned():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SPAWN_ATTRS
                and node.args
            ):
                continue
            first = node.args[0]
            target: Optional[FunctionInfo] = None
            if isinstance(first, ast.Call):
                target = project.resolve_call(fi, first.func)
            elif isinstance(first, (ast.Name, ast.Attribute)):
                target = project.resolve_call(fi, first)
            if target is not None and target.is_generator and target not in seen:
                seen.add(target)
                roots.append(target)
    return roots


def _driven_closure(
    project: Project, roots: List[FunctionInfo]
) -> List[FunctionInfo]:
    """Roots plus every generator reachable through ``yield from`` edges."""
    driven: List[FunctionInfo] = []
    seen: Set[FunctionInfo] = set()
    stack = list(roots)
    while stack:
        fi = stack.pop()
        if fi in seen:
            continue
        seen.add(fi)
        driven.append(fi)
        for node in fi.owned():
            if isinstance(node, ast.YieldFrom) and isinstance(
                node.value, ast.Call
            ):
                callee = project.resolve_call(fi, node.value.func)
                if callee is not None and callee.is_generator:
                    stack.append(callee)
    return sorted(driven, key=lambda f: (f.path, f.lineno, f.qualname))


def _check_yields(project: Project, fi: FunctionInfo) -> List[Finding]:
    found: List[Finding] = []

    def flag(node: ast.AST, msg: str) -> None:
        found.append(Finding(ILLEGAL_YIELD, fi.path, node.lineno, msg, fi.qualname))

    for node in fi.owned():
        if isinstance(node, ast.YieldFrom):
            if isinstance(node.value, ast.Call):
                callee = project.resolve_call(fi, node.value.func)
                if callee is not None and not callee.is_generator:
                    flag(
                        node,
                        f"'yield from {callee.name}(...)' but "
                        f"{callee.qualname} is not a generator — its return "
                        "value is iterated, not awaited",
                    )
            continue
        if not isinstance(node, ast.Yield) or node.value is None:
            continue
        value = node.value
        kind = _illegal_literal(value)
        if kind is not None:
            flag(
                node,
                f"process yields a {kind}; the engine accepts only "
                "Event, None, or a non-negative delay",
            )
            continue
        if isinstance(value, ast.Call):
            callee = project.resolve_call(fi, value.func)
            if callee is None:
                continue
            if callee.is_generator:
                flag(
                    node,
                    f"'yield {callee.name}(...)' hands the engine a "
                    "generator object — delegate with 'yield from' so its "
                    "steps actually run",
                )
            else:
                kind = _illegal_returns(callee)
                if kind is not None:
                    flag(
                        node,
                        f"helper {callee.qualname} can only return a {kind}, "
                        "which the engine rejects as a yield value",
                    )
    return found


# --------------------------------------------------------------------------
# leaked waiters
# --------------------------------------------------------------------------

def _is_event_ctor(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Name) and call.func.id == "Event":
        return True
    return isinstance(call.func, ast.Attribute) and call.func.attr == "event"


def _parents(fi: FunctionInfo) -> Dict[int, ast.AST]:
    parent: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [fi.node]
    while stack:
        node = stack.pop()
        if node is not fi.node and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue  # nested scopes keep their own uses
        for child in ast.iter_child_nodes(node):
            parent[id(child)] = node
            stack.append(child)
    return parent


def _check_leaked_waiters(fi: FunctionInfo) -> List[Finding]:
    creations: List[Tuple[str, ast.Assign]] = []
    for node in fi.owned():
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and _is_event_ctor(node.value)
        ):
            creations.append((node.targets[0].id, node))
    if not creations:
        return []

    cfg = fi.cfg
    stmt_of = map_statements(fi.node)
    parent = _parents(fi)
    found: List[Finding] = []

    for var, creation in creations:
        subscribed = False
        consuming_stmts: Set[int] = set()
        for node in fi.owned():
            if not (isinstance(node, ast.Name) and node.id == var):
                continue
            if isinstance(node.ctx, ast.Store):
                continue  # (re)binding neither subscribes nor consumes
            par = parent.get(id(node))
            owner = stmt_of.get(id(node))
            if owner is creation:
                continue
            if (
                isinstance(par, ast.Attribute)
                and par.attr in _SUBSCRIBE_ATTRS
                and isinstance(parent.get(id(par)), ast.Call)
            ):
                subscribed = True
                continue
            # Any other load — yield/return/call-arg/store/succeed/... —
            # counts as consumption: the event escaped or was completed.
            if owner is not None:
                nid = cfg.node_of_stmt.get(id(owner))
                if nid is not None:
                    consuming_stmts.add(nid)
        if not subscribed:
            continue
        start = cfg.node_of_stmt.get(id(creation))
        if start is None:
            continue  # creation itself unreachable
        reach = cfg.reachable_from(start, blocked=frozenset(consuming_stmts))
        if cfg.exit in reach:
            found.append(Finding(
                LEAKED_WAITER, fi.path, creation.lineno,
                f"Event {var!r} is created and subscribed here, but a path "
                "reaches the end of the function without yielding, storing, "
                "or completing it — its callback can never fire",
                fi.qualname,
            ))
    return found


# --------------------------------------------------------------------------
# the pass
# --------------------------------------------------------------------------

def run(project: Project, enabled: Sequence[str]) -> List[Finding]:
    findings: List[Finding] = []
    if ILLEGAL_YIELD in enabled:
        for fi in _driven_closure(project, _process_roots(project)):
            findings += _check_yields(project, fi)
    if LEAKED_WAITER in enabled:
        for fi in project.functions:
            findings += _check_leaked_waiters(fi)
    return findings


PASS = Pass(family=FAMILY, rules=RULES, run=run)
