"""Fig 5: inter-node goodput — GPU-initiated partitioned vs Send/Recv.

Paper claims reproduced here:

* the partitioned (Progression Engine) path wins at every size;
* the benefit peaks at ~2.80x for a 1-block kernel and settles to
  ~1.17x at the largest grid;
* inter-node gains exceed the intra-node gains of Fig 4 (communication
  is costlier, so overlap is more impactful);
* goodput stays below the 50 GB/s ConnectX-7 bound.
"""

from conftest import run_exhibit, within

from repro.bench import figures

GRIDS = (1, 16, 256, 8192, 131072)


def test_fig5_internode(benchmark):
    series = run_exhibit(benchmark, figures.fig5, grids=GRIDS)

    for row in series.rows:
        assert row["pe_speedup"] >= 1.0, f"partitioned must win at grid {row['grid']}"
        assert row["progression"] < 50.0, "goodput cannot exceed the IB bound"

    within(series.rows[0]["pe_speedup"], 2.4, 3.1, "speedup at grid 1 (paper 2.80x)")
    within(series.rows[-1]["pe_speedup"], 1.05, 1.3, "speedup at largest grid (paper 1.17x)")

    sp = series.column("pe_speedup")
    assert sp[0] == max(sp), "largest benefit must be at the smallest kernel"

    # Inter-node peak gain exceeds the intra-node PE peak (Fig 4 ~1.28x).
    assert sp[0] > 1.5
