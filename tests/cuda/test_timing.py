"""Cost model: geometry, wave plans, Fig 2 calibration invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.timing import CostModel, WorkSpec
from repro.units import us

CM = CostModel()


def test_resident_blocks_by_block_size():
    assert CM.resident_blocks(1024) == 2 * 132          # 2048/1024 per SM
    assert CM.resident_blocks(256) == 8 * 132
    assert CM.resident_blocks(64) == 32 * 132           # capped at 32 blocks/SM
    assert CM.resident_blocks(1) == 32 * 132


def test_resident_blocks_bounds():
    with pytest.raises(ValueError):
        CM.resident_blocks(0)
    with pytest.raises(ValueError):
        CM.resident_blocks(2048)


def test_n_waves():
    r = CM.resident_blocks(1024)
    assert CM.n_waves(1, 1024) == 1
    assert CM.n_waves(r, 1024) == 1
    assert CM.n_waves(r + 1, 1024) == 2
    with pytest.raises(ValueError):
        CM.n_waves(0, 1024)


def test_wave_plan_covers_grid_exactly():
    plan = CM.wave_plan(1000, 1024, WorkSpec.vector_add())
    blocks = [b for rng, _dt in plan for b in rng]
    assert blocks == list(range(1000))


def test_small_wave_hits_floor():
    dt = CM.wave_time(1, 1024, WorkSpec.vector_add())
    assert dt == pytest.approx(CM.block_floor)


def test_full_wave_is_bandwidth_bound():
    n = CM.resident_blocks(1024)
    dt = CM.wave_time(n, 1024, WorkSpec.vector_add())
    assert dt == pytest.approx(n * 1024 * 24 / CM.hbm_bw)
    assert dt > CM.block_floor


def test_fig2_sync_fraction_small_kernels():
    """Paper: sync is 71.6-78.9% of launch+sync for grids <= 256."""
    for grid in (1, 16, 256):
        total = CM.launch_api_cost + CM.kernel_exec_time(grid, 1024, WorkSpec.vector_add())
        frac = CM.stream_sync_cost / (total + CM.stream_sync_cost)
        assert 0.68 <= frac <= 0.82, (grid, frac)


def test_fig2_sync_fraction_large_kernel():
    """Paper: ~0.8% at a 128K grid."""
    total = CM.kernel_exec_time(131072, 1024, WorkSpec.vector_add())
    frac = CM.stream_sync_cost / (total + CM.stream_sync_cost)
    assert 0.004 <= frac <= 0.012
    assert 0.8e-3 <= total <= 1.3e-3   # ~1 ms kernel


def test_flop_bound_kernel():
    heavy = WorkSpec(flops_per_thread=1e6, bytes_per_thread=1.0)
    n = CM.resident_blocks(1024)
    dt = CM.wave_time(n, 1024, heavy)
    assert dt == pytest.approx(n * 1024 * 1e6 / CM.flop_rate)


def test_workspec_presets():
    assert WorkSpec.vector_add(8).bytes_per_thread == 24.0
    assert WorkSpec.jacobi_stencil(8).flops_per_thread == 5.0
    assert WorkSpec.bce().flops_per_thread == 20.0


def test_with_overrides():
    fast = CM.with_overrides(stream_sync_cost=1 * us)
    assert fast.stream_sync_cost == pytest.approx(1 * us)
    assert CM.stream_sync_cost == pytest.approx(7.8 * us)


@given(
    grid=st.integers(min_value=1, max_value=1 << 17),
    block=st.integers(min_value=1, max_value=1024),
)
@settings(max_examples=100, deadline=None)
def test_property_exec_time_consistent_with_wave_plan(grid, block):
    work = WorkSpec.vector_add()
    plan = CM.wave_plan(grid, block, work)
    assert len(plan) == CM.n_waves(grid, block)
    assert sum(len(rng) for rng, _ in plan) == grid
    total = CM.launch_latency + sum(dt for _, dt in plan)
    assert CM.kernel_exec_time(grid, block, work) == pytest.approx(total)


@given(grid=st.integers(min_value=1, max_value=1 << 16))
@settings(max_examples=60, deadline=None)
def test_property_exec_time_monotone_in_grid(grid):
    work = WorkSpec.vector_add()
    t1 = CM.kernel_exec_time(grid, 1024, work)
    t2 = CM.kernel_exec_time(grid + 1, 1024, work)
    assert t2 >= t1 * (1 - 1e-12)
