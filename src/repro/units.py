"""Unit helpers.

Simulated time is a float in seconds; data sizes are ints in bytes.  All
hardware constants in :mod:`repro.hw.params` and :mod:`repro.cuda.timing`
are written with these helpers so that e.g. ``7.8 * us`` reads like the
paper's "7.8 µs".
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
s = 1.0
ms = 1e-3
us = 1e-6
ns = 1e-9

# --- data size ----------------------------------------------------------------
B = 1
KiB = 1024
MiB = 1024**2
GiB = 1024**3

# --- bandwidth (bytes / second) ----------------------------------------------
KiBps = KiB / s
MiBps = MiB / s
GiBps = GiB / s
GBps = 1e9 / s  # decimal GB/s, matches vendor link specs ("900GB/s")
Gbps = 1e9 / 8 / s  # decimal Gbit/s ("400Gbit")


def fmt_time(t: float) -> str:
    """Human-readable simulated duration, e.g. '7.80us'."""
    if t == 0:
        return "0s"
    a = abs(t)
    if a >= 1.0:
        return f"{t:.3f}s"
    if a >= 1e-3:
        return f"{t / ms:.2f}ms"
    if a >= 1e-6:
        return f"{t / us:.2f}us"
    return f"{t / ns:.1f}ns"


def fmt_bytes(n: float) -> str:
    """Human-readable byte count, e.g. '8.0KiB'."""
    if abs(n) >= GiB:
        return f"{n / GiB:.2f}GiB"
    if abs(n) >= MiB:
        return f"{n / MiB:.2f}MiB"
    if abs(n) >= KiB:
        return f"{n / KiB:.1f}KiB"
    return f"{int(n)}B"
