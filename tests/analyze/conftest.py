"""Helpers for the analyzer test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analyze.model import Project
from repro.analyze.registry import all_passes
from repro.analyze.rules import apply_suppressions, run_passes

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
REPRO_SRC = REPO_ROOT / "src" / "repro"


@pytest.fixture
def analyze():
    """Analyze in-memory ``{path: source}``; returns kept findings."""

    def run(sources, only=None, suppress=True):
        project = Project.from_sources(sources)
        findings = run_passes(project, all_passes(), only=only)
        if suppress:
            findings, _ = apply_suppressions(project, findings)
        return findings

    return run


@pytest.fixture
def analyze_path():
    """Analyze files/directories on disk; returns kept findings."""

    def run(*paths, only=None):
        project = Project.load([Path(p) for p in paths])
        findings = run_passes(project, all_passes(), only=only)
        findings, _ = apply_suppressions(project, findings)
        return findings

    return run


def rules_of(findings):
    return sorted({f.rule for f in findings})
