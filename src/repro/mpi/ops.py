"""MPI reduction operations mapped onto NumPy ufuncs.

``MpiOp.reduce_into(acc, operand)`` performs the *numerical* reduction
in place; the caller charges the simulated time (CPU reduction bandwidth
for host-staged collectives, a reduction-kernel launch for device-side
collectives — the cost asymmetry the paper's Section VI-B discusses).

``NOP`` is the schedule placeholder used by Partitioned Collective steps
that only move data (paper Algorithm 1, lines 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class MpiOp:
    """A named, commutative reduction operation."""

    name: str
    ufunc: Callable  # numpy ufunc with .at/out semantics

    def reduce_into(self, acc: np.ndarray, operand: np.ndarray) -> None:
        """acc = acc (op) operand, in place, no allocation."""
        if acc.shape != operand.shape:
            raise ValueError(f"reduce shape mismatch: {acc.shape} vs {operand.shape}")
        self.ufunc(acc, operand, out=acc)

    def __repr__(self) -> str:
        return f"MPI_{self.name}"


class _Nop:
    """The no-operation marker for data-movement-only schedule steps."""

    name = "NOP"

    def reduce_into(self, acc, operand) -> None:  # pragma: no cover - guarded by callers
        raise RuntimeError("NOP must not reduce; schedule steps should skip it")

    def __repr__(self) -> str:
        return "NOP"


SUM = MpiOp("SUM", np.add)
PROD = MpiOp("PROD", np.multiply)
MAX = MpiOp("MAX", np.maximum)
MIN = MpiOp("MIN", np.minimum)
LAND = MpiOp("LAND", np.logical_and)
LOR = MpiOp("LOR", np.logical_or)
BAND = MpiOp("BAND", np.bitwise_and)
BOR = MpiOp("BOR", np.bitwise_or)
NOP = _Nop()
