"""Benchmark harness: regenerates every table and figure of the paper.

Each ``fig*``/``table*`` function in :mod:`repro.bench.figures` runs the
full simulation workload for one exhibit and returns a
:class:`~repro.bench.series.Series` whose rows mirror what the paper
plots; :func:`~repro.bench.series.render` prints them.  The
``benchmarks/`` directory wraps these in pytest-benchmark targets, and
EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.bench.series import Series, render

__all__ = ["Series", "render"]
