"""PcollRequest: a partitioned collective in flight (Algorithm 2 executor).

The collective is built *on top of* the partitioned point-to-point layer
(paper Section IV-B): at init time it creates one partitioned send channel
per outgoing neighbour and one receive channel per incoming neighbour of
its schedule.  Wire geometry: user partition ``u`` executing schedule step
``i`` that sends to neighbour ``o`` uses wire partition
``u * sends_to(o) + ordinal(o, i)`` of the channel to ``o`` — the paper's
"transport partition = (user partition * user partition size) + R" mapping
generalized to arbitrary schedules.

Progression: one state-machine coroutine per user partition walks the
schedule (independently per partition — the pipelining that lets the
collective overlap the producing kernel).  Reductions launch a device
kernel and synchronize *inside the collective*, which is exactly the cost
the paper identifies as the remaining gap to NCCL (Section VI-B).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiStateError, MpiUsageError
from repro.mpi.ops import MpiOp, NOP
from repro.mpi.requests import PersistentRequest
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.partitioned.p2p import PUT_ISSUE_COST, PrecvRequest, PsendRequest, psend_init, precv_init
from repro.pcoll.schedule import Schedule
from repro.sim.events import AllOf
from repro.sim.resources import Counter, Flag
from repro.units import us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cuda.device import Device
    from repro.mpi.comm import Communicator

#: Host cost of building one schedule step at init time.
SCHEDULE_STEP_COST = 2.4 * us
#: Carving the working/staging buffers out of the component's device pool.
POOL_ALLOC_COST = 25.0 * us
#: Tag space for internal collective channels (per collective instance).
_PCOLL_TAG_BASE = 1 << 24


class PcollRequest(PersistentRequest):
    """One rank's handle on a partitioned collective."""

    def __init__(
        self,
        comm: "Communicator",
        sendbuf: Buffer,
        recvbuf: Buffer,
        partitions: int,
        op: MpiOp,
        schedule: Schedule,
        device: "Device",
        name: str = "pcoll",
    ) -> None:
        super().__init__(comm.rt, name)
        if len(sendbuf.data) != len(recvbuf.data):
            raise MpiUsageError("sendbuf/recvbuf length mismatch")
        n = len(sendbuf.data)
        if n % partitions != 0:
            raise MpiUsageError(f"{n} elements do not divide into {partitions} partitions")
        part_elems = n // partitions
        if part_elems % schedule.n_chunks != 0:
            raise MpiUsageError(
                f"user partition of {part_elems} elements does not divide into "
                f"{schedule.n_chunks} ring chunks"
            )
        self.comm = comm
        self.sendbuf = sendbuf
        self.recvbuf = recvbuf          # doubles as the working buffer W
        self.partitions = partitions
        self.op = op
        self.schedule = schedule
        self.device = device
        self.in_place = sendbuf.same_allocation(recvbuf)
        self.chunk_elems = part_elems // schedule.n_chunks
        self.part_elems = part_elems

        # Filled by _init_channels (during <coll>_init).
        self.send_ch: Dict[int, PsendRequest] = {}
        self.recv_ch: Dict[int, PrecvRequest] = {}
        self.send_ordinal: Dict[int, Dict[int, int]] = {}  # nbr -> step -> ordinal
        self.recv_ordinal: Dict[int, Dict[int, int]] = {}
        self._send_staging: Dict[int, Buffer] = {}

        # Epoch state (re-created by each MPI_Start).
        self.user_ready: List[Flag] = []
        self.partition_done: List[Flag] = []
        self._pready_called: List[bool] = []
        self._prepared_flag = Flag(self.engine)
        self.done_count = Counter(self.engine)
        self._sms: List = []
        self.preq = None  # device MPIX_Prequest, if created

        # Collective channels match by a per-communicator ordinal: MPI
        # requires every rank to initialize collectives on a communicator
        # in the same order, so the Nth init gets tag base+N on all ranks.
        seq = getattr(comm, "_pcoll_seq", 0)
        comm._pcoll_seq = seq + 1
        self._tag = _PCOLL_TAG_BASE + seq

    # -- geometry helpers ----------------------------------------------------
    def _w_chunk(self, u: int, chunk: int) -> Buffer:
        """Chunk ``chunk`` of user partition ``u`` in the working buffer."""
        start = u * self.part_elems + chunk * self.chunk_elems
        return self.recvbuf.view(start, self.chunk_elems)

    def _send_chunk_src(self, u: int, chunk: int) -> Buffer:
        return self._w_chunk(u, chunk)

    def _wire_tp(self, ordinals: Dict[int, int], nbr: int, u: int, step: int, total: int) -> int:
        return u * total + ordinals[step]

    # -- init (called by api.p<coll>_init) ----------------------------------------
    def _init_channels(self) -> Generator:
        """Create the underlying partitioned P2P channels + pay init costs."""
        rt = self.rt
        yield rt.engine.timeout(SCHEDULE_STEP_COST * self.schedule.n_steps)
        yield rt.engine.timeout(POOL_ALLOC_COST)

        for o in self.schedule.all_outgoing():
            n_sends = self.schedule.sends_to(o)
            self.send_ordinal[o] = {}
            k = 0
            for i, s in enumerate(self.schedule.steps):
                if o in s.outgoing:
                    self.send_ordinal[o][i] = k
                    k += 1
            # Geometry-only send staging (puts override the source slice,
            # so this region is never touched: zero-memory allocation).
            staging = Buffer.alloc_virtual(
                self.partitions * n_sends * self.chunk_elems,
                self.recvbuf.data.dtype,
                MemSpace.DEVICE,
                node=self.device.node,
                gpu=self.device.gpu_id,
                label=f"pcoll_tx{o}",
            )
            self._send_staging[o] = staging
            self.send_ch[o] = yield from psend_init(
                self.comm, staging, self.partitions * n_sends, o, tag=self._tag
            )
        for inc in self.schedule.all_incoming():
            n_recvs = self.schedule.recvs_from(inc)
            self.recv_ordinal[inc] = {}
            k = 0
            for i, s in enumerate(self.schedule.steps):
                if inc in s.incoming:
                    self.recv_ordinal[inc][i] = k
                    k += 1
            rx = Buffer.alloc(
                self.partitions * n_recvs * self.chunk_elems,
                self.recvbuf.data.dtype,
                MemSpace.DEVICE,
                node=self.device.node,
                gpu=self.device.gpu_id,
                label=f"pcoll_rx{inc}",
            )
            self.recv_ch[inc] = yield from precv_init(
                self.comm, rx, self.partitions * n_recvs, inc, tag=self._tag
            )

    # -- MPI_Start ------------------------------------------------------------------
    def start(self) -> Generator:
        yield self.engine.timeout(0.5 * us)
        self._begin_epoch()
        self.user_ready = [Flag(self.engine) for _ in range(self.partitions)]
        self.partition_done = [Flag(self.engine) for _ in range(self.partitions)]
        self._pready_called = [False] * self.partitions
        self._prepared_flag = Flag(self.engine)
        self.done_count.reset()
        for ch in self.send_ch.values():
            yield from ch.start()
        for ch in self.recv_ch.values():
            yield from ch.start()
        epoch = self.epoch
        self._sms = [
            self.engine.process(self._run_partition(u, epoch), name=f"pcoll.sm{u}")
            for u in range(self.partitions)
        ]
        if self.preq is not None:
            self.preq.arm_epoch()

    # -- MPIX_Pbuf_prepare ---------------------------------------------------------
    def pbuf_prepare(self) -> Generator:
        """Synchronize all processes associated with the collective."""
        if not self.active:
            raise MpiStateError("pbuf_prepare before MPI_Start")
        procs = [
            self.engine.process(ch.pbuf_prepare(), name="pcoll.prep_s")
            for ch in self.send_ch.values()
        ] + [
            self.engine.process(ch.pbuf_prepare(), name="pcoll.prep_r")
            for ch in self.recv_ch.values()
        ]
        if procs:
            yield AllOf(self.engine, procs)
        self._prepared_flag.set()

    # -- MPI_Pready (user partition, host binding) ------------------------------------
    def pready(self, user_partition: int) -> Generator:
        yield self.engine.timeout(PUT_ISSUE_COST)
        self.issue_user_pready(user_partition)

    def issue_user_pready(self, u: int) -> None:
        """Zero-time core shared with the device (PE) path."""
        if not self.active:
            raise MpiStateError("collective MPI_Pready outside an active epoch")
        if not 0 <= u < self.partitions:
            raise MpiUsageError(f"user partition {u} out of range")
        if self._pready_called[u]:
            raise MpiStateError(f"MPI_Pready called twice for user partition {u}")
        self._pready_called[u] = True
        if not self.in_place:
            # Stage this partition's data into the working buffer first.
            self.engine.process(self._stage_partition(u), name=f"pcoll.stage{u}")
        else:
            self.user_ready[u].set()

    def _stage_partition(self, u: int) -> Generator:
        src = self.sendbuf.view(u * self.part_elems, self.part_elems)
        dst = self.recvbuf.view(u * self.part_elems, self.part_elems)
        yield self.rt.fabric.dataplane.put(
            src, dst, traffic_class="pcoll", name="pcoll_stage"
        )
        self.user_ready[u].set()

    def parrived(self, user_partition: int) -> bool:
        """Has this user partition's collective completed? (flag read)"""
        if not 0 <= user_partition < self.partitions:
            raise MpiUsageError(f"user partition {user_partition} out of range")
        return self.partition_done[user_partition].is_set

    # -- the per-partition schedule state machine (Algorithm 2) ------------------------
    def _run_partition(self, u: int, epoch: int) -> Generator:
        # No sends may leave before the epoch's channel handshake is done.
        yield self._prepared_flag.wait()
        if self.schedule.requires_local_contribution:
            yield self.user_ready[u].wait()
        if self.epoch != epoch:
            return  # stale epoch
        for i, step in enumerate(self.schedule.steps):
            for o in step.outgoing:
                yield self.rt.progress.dispatch(
                    lambda o=o, i=i: self._issue_send(u, i, o), name=f"ps_u{u}s{i}"
                )
            for inc in step.incoming:
                ch = self.recv_ch[inc]
                total = self.schedule.recvs_from(inc)
                tp = self._wire_tp(self.recv_ordinal[inc], inc, u, i, total)
                flag = ch.arrived_flags[tp]
                if not flag.is_set:
                    yield flag.wait()
                yield self.engine.timeout(self.rt.params.progress_poll_latency)
                yield self.rt.progress.dispatch(
                    lambda inc=inc, i=i, tp=tp, step=step: self._consume(u, i, inc, tp, step),
                    name=f"pc_u{u}s{i}",
                )
        self.partition_done[u].set()
        self.done_count.add(1)

    def _issue_send(self, u: int, i: int, o: int) -> Generator:
        """Internal host MPI_Pready on the channel to ``o`` for step ``i``."""
        yield self.engine.timeout(PUT_ISSUE_COST)
        step = self.schedule.steps[i]
        ch = self.send_ch[o]
        total = self.schedule.sends_to(o)
        tp = self._wire_tp(self.send_ordinal[o], o, u, i, total)
        src = self._send_chunk_src(u, step.send_chunk)
        ch.issue_pready(tp, with_data=True, src_override=src)

    def _consume(self, u: int, i: int, inc: int, tp: int, step) -> Generator:
        """Reduce or copy an arrived chunk into the working buffer."""
        ch = self.recv_ch[inc]
        slot = ch.buf.partition(tp, ch.partitions)
        target = self._w_chunk(u, step.recv_chunk)
        if step.op is NOP:
            # Pure data movement: local device copy (DMA).
            yield self.engine.timeout(self.device.cost.memcpy_api_cost)
            yield self.rt.fabric.dataplane.put(
                slot, target, traffic_class="pcoll", name="pcoll_copy"
            )
        else:
            # Launch a reduction kernel and synchronize before the next
            # step may consume this chunk (numerical correctness — the
            # cudaStreamSynchronize *inside the collective*, Section VI-B).
            grid = max(1, math.ceil(self.chunk_elems / 1024))
            block = min(1024, self.chunk_elems)
            kernel = UniformKernel(
                grid, block,
                WorkSpec(flops_per_thread=1.0, bytes_per_thread=3.0 * target.itemsize),
                name="pcoll_reduce",
                apply=lambda: step.op.reduce_into(target.data, slot.data),
            )
            yield from self.device.launch_h(kernel)
            yield from self.device.sync_h()

    # -- MPI_Wait ----------------------------------------------------------------------
    def wait(self) -> Generator:
        yield self.engine.timeout(self.rt.params.mpi_call_overhead)
        if not self.active:
            return self.status
        yield self.done_count.wait_for(self.partitions)
        # Close the internal channels' epochs: all wire partitions have
        # been readied/arrived by now; the sender side may still have its
        # last allgather puts in flight (local completion).
        for ch in self.send_ch.values():
            yield from ch.wait()
        for ch in self.recv_ch.values():
            yield from ch.wait()
        yield self.engine.timeout(self.rt.params.progress_poll_latency)
        self._complete({"epoch": self.epoch})
        return self.status

    # -- MPIX_Prequest_create (device bindings for the collective) ----------------------
    def prequest_create(
        self,
        device: "Device",
        grid: int,
        block: int,
        signal_mode: SignalMode = SignalMode.BLOCK,
    ) -> Generator:
        """Device request whose transport partitions are the collective's
        *user* partitions: device blocks signal readiness, the progression
        engine triggers the collective's per-partition schedule."""
        from repro.partitioned.prequest import CopyMode, Prequest

        if grid % self.partitions != 0:
            raise MpiUsageError(
                f"grid {grid} not divisible by {self.partitions} user partitions"
            )
        agg = AggregationSpec(grid, block, grid // self.partitions, signal_mode)
        cost = device.cost
        yield self.engine.timeout(cost.cuda_malloc_cost)
        yield self.engine.timeout(cost.cuda_host_alloc_cost)
        yield self.engine.timeout(self.rt.params.ucp_mem_map_per_call)
        yield self.engine.timeout(cost.memcpy_api_cost)
        preq = Prequest(
            self, device, agg, CopyMode.PROGRESSION_ENGINE,
            on_ready=self.issue_user_pready,
        )
        self.preq = preq
        if self.active:
            preq.arm_epoch()
        return preq
