"""Deterministic discrete-event simulation engine.

This package is the substrate on which every other subsystem runs: the GPU
simulator, the UCX-like network, MPI ranks, and the progression engines are
all generator-coroutine :class:`~repro.sim.process.Process` objects scheduled
on a single :class:`~repro.sim.engine.Engine`.

Design goals:

* **Determinism** — events at equal simulated times fire in a stable,
  documented order (scheduling priority, then insertion sequence), so tests
  can assert exact event orderings.
* **No busy-waiting** — all blocking constructs (:class:`Flag`,
  :class:`Channel`, :class:`Counter`, :class:`Resource`) wake their waiters
  through events; polling loops are modelled by *charging latency*, not by
  spinning the event loop.
* **SimPy-like ergonomics** — processes are plain generators that ``yield``
  :class:`Timeout`, :class:`Event`, other processes, or the combinators
  :class:`AllOf` / :class:`AnyOf`.
"""

from repro.sim.engine import Engine
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Interrupt, Process, ProcessFailed
from repro.sim.resources import Channel, Counter, Flag, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Counter",
    "Engine",
    "Event",
    "Flag",
    "Interrupt",
    "Process",
    "ProcessFailed",
    "Resource",
    "Store",
    "Timeout",
]
