"""Buffer semantics: spaces, views, partitions, copies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import Buffer, MemSpace


def test_alloc_defaults():
    b = Buffer.alloc(16)
    assert len(b) == 16
    assert b.space is MemSpace.HOST
    assert np.all(b.data == 0)


def test_alloc_fill():
    b = Buffer.alloc(4, fill=2.5)
    assert np.all(b.data == 2.5)


def test_device_buffer_needs_gpu():
    with pytest.raises(ValueError):
        Buffer.alloc(4, space=MemSpace.DEVICE)


def test_requires_1d():
    with pytest.raises(ValueError):
        Buffer(np.zeros((2, 2)), MemSpace.HOST, node=0)


def test_space_accessibility_matrix():
    assert MemSpace.HOST.host_accessible and not MemSpace.HOST.device_accessible
    assert MemSpace.PINNED.host_accessible and MemSpace.PINNED.device_accessible
    assert MemSpace.DEVICE.device_accessible and not MemSpace.DEVICE.host_accessible
    assert MemSpace.UNIFIED.host_accessible and MemSpace.UNIFIED.device_accessible


def test_view_shares_memory():
    b = Buffer.alloc(10)
    v = b.view(2, 4)
    v.data[:] = 9.0
    assert np.all(b.data[2:6] == 9.0)
    assert b.same_allocation(v)


def test_view_bounds_checked():
    b = Buffer.alloc(10)
    with pytest.raises(IndexError):
        b.view(8, 4)
    with pytest.raises(IndexError):
        b.view(-1, 2)


def test_view_keeps_location():
    b = Buffer.alloc(8, space=MemSpace.DEVICE, node=1, gpu=5)
    v = b.view(0, 4)
    assert v.location() == (MemSpace.DEVICE, 1, 5)


def test_partition_geometry():
    b = Buffer.alloc(12)
    for i in range(4):
        p = b.partition(i, 4)
        assert len(p) == 3
        p.data[:] = float(i)
    assert list(b.data) == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]


def test_partition_uneven_rejected():
    with pytest.raises(ValueError):
        Buffer.alloc(10).partition(0, 3)


def test_partition_bad_count():
    with pytest.raises(ValueError):
        Buffer.alloc(10).partition(0, 0)


def test_copy_from():
    src = Buffer.alloc(5, fill=3.0)
    dst = Buffer.alloc(5)
    dst.copy_from(src)
    assert np.all(dst.data == 3.0)
    src.data[0] = 99  # copies are deep
    assert dst.data[0] == 3.0


def test_copy_size_mismatch():
    with pytest.raises(ValueError):
        Buffer.alloc(5).copy_from(Buffer.alloc(4))


def test_nbytes_and_itemsize():
    b = Buffer.alloc(8, dtype=np.float32)
    assert b.itemsize == 4
    assert b.nbytes == 32


@given(
    n=st.integers(min_value=1, max_value=64),
    parts=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_property_partitions_tile_the_buffer(n, parts):
    """Equal partitions exactly tile the buffer with no overlap."""
    total = n * parts
    b = Buffer.alloc(total)
    for i in range(parts):
        b.partition(i, parts).data[:] = i
    expected = np.repeat(np.arange(parts, dtype=float), n)
    assert np.array_equal(b.data, expected)
