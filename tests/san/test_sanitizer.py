"""End-to-end Sanitizer runs: clean device-initiated sends report nothing,
seeded misuse is caught with actor/time provenance."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE
from repro.hw.topology import Fabric
from repro.mpi.world import World
from repro.partitioned import device as pdev
from repro.partitioned.aggregation import AggregationSpec, SignalMode
from repro.partitioned.prequest import CopyMode
from repro.san import Sanitizer, record
from repro.sim.engine import Engine

WORK = WorkSpec.vector_add()


def _pair(body_factory, mode=CopyMode.PROGRESSION_ENGINE, grid=4, block=256,
          recv_body_factory=None):
    """Device-initiated send (one epoch, one block per transport partition)."""
    tps = grid
    n = grid * block
    snaps = []

    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(n, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, tps, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            agg = AggregationSpec(grid, block, grid // tps, SignalMode.BLOCK)
            preq = yield from sreq.prequest_create(ctx.gpu, agg=agg, mode=mode)
            yield from ctx.gpu.launch_h(BlockKernel(grid, block, body_factory(sbuf, preq)))
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(n)
            rreq = yield from comm.precv_init(rbuf, tps, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            if recv_body_factory is not None:
                yield from ctx.gpu.launch_h(
                    BlockKernel(grid, block, recv_body_factory(rbuf, rreq))
                )
            yield from rreq.wait()
            snaps.append(rbuf.data.copy())

    World(ONE_NODE).run(main, nprocs=2)
    return snaps


def _clean_body(sbuf, preq):
    def body(blk):
        yield blk.compute(WORK)
        yield pdev.pready(blk, preq)
    return body


@pytest.mark.parametrize("mode", [CopyMode.PROGRESSION_ENGINE, CopyMode.KERNEL_COPY])
def test_clean_run_reports_nothing(mode):
    with Sanitizer() as san:
        snaps = _pair(_clean_body, mode=mode)
    assert np.all(snaps[0] == 1.0)
    assert san.report.ok
    assert san.findings == []
    assert len(san.recorder.events) > 0


def test_seeded_double_pready_detected():
    """Doubled pready_block completes cleanly but the sanitizer flags it."""
    grid = 4

    def seeded(sbuf, preq):
        def body(blk):
            yield blk.compute(WORK)
            yield pdev.pready_block(blk, preq)
            yield pdev.pready_block(blk, preq)  # the seeded bug
        return body

    with Sanitizer() as san:
        snaps = _pair(seeded, grid=grid)

    # The runtime absorbs the duplicate silently: data still lands.
    assert np.all(snaps[0] == 1.0)
    findings = san.findings
    assert {f.check for f in findings} == {"double-pready"}
    assert len(findings) == grid  # one per doubled block
    for f in findings:
        assert f.actor is not None and f.actor[0] == "block"
        assert f.time > 0.0
        assert f.related and "first MPIX_Pready" in f.related[0][2]
    assert "double-pready" in san.report.render()


def test_read_before_parrived_detected():
    def reader(rbuf, rreq):
        def body(blk):
            if blk.block_id == 0:
                blk.note_read(rbuf.partition(0, 4))  # before arrival
            yield blk.compute(WORK)
            yield pdev.parrived_device(blk, rreq, blk.block_id)
            if blk.block_id == 0:
                blk.note_read(rbuf.partition(0, 4))  # licensed now
        return body

    with Sanitizer(checks=["read-before-parrived"]) as san:
        _pair(_clean_body, recv_body_factory=reader)

    findings = san.findings
    assert len(findings) == 1
    assert findings[0].check == "read-before-parrived"
    assert findings[0].actor[0] == "block"


def test_send_overwrite_detected():
    def main(ctx):
        comm = ctx.comm
        if ctx.rank == 0:
            sbuf = ctx.gpu.alloc(1024, fill=1.0)
            sreq = yield from comm.psend_init(sbuf, 1, dest=1, tag=0)
            yield from sreq.start()
            yield from sreq.pbuf_prepare()
            yield from sreq.pready(0)
            # Host scribbles on the partition while the put is in flight.
            record.access(("host", 0), sbuf.partition(0, 1), write=True, note="scribble")
            yield from sreq.wait()
        else:
            rbuf = ctx.gpu.alloc(1024)
            rreq = yield from comm.precv_init(rbuf, 1, source=0, tag=0)
            yield from rreq.start()
            yield from rreq.pbuf_prepare()
            yield from rreq.wait()

    with Sanitizer(checks=["send-overwrite"]) as san:
        World(ONE_NODE).run(main, nprocs=2)

    findings = san.findings
    assert len(findings) == 1
    assert findings[0].check == "send-overwrite"
    assert findings[0].related and "MPI_Pready" in findings[0].related[0][2]


def test_uninit_read_detected():
    with Sanitizer(checks=["uninit-read"]) as san:
        engine = Engine()
        gpu = Device(Fabric(engine, ONE_NODE), 0)
        buf = gpu.alloc(256)

        def body(blk):
            blk.note_read(buf)  # nothing ever wrote this allocation
            yield blk.compute(WORK)

        def host():
            yield from gpu.launch_h(BlockKernel(1, 256, body))
            yield from gpu.sync_h()

        engine.run(engine.process(host()))

    assert [f.check for f in san.findings] == ["uninit-read"]


def test_written_alloc_is_not_uninit():
    with Sanitizer(checks=["uninit-read"]) as san:
        engine = Engine()
        gpu = Device(Fabric(engine, ONE_NODE), 0)
        buf = gpu.alloc(256)

        def body(blk):
            blk.note_write(buf)
            blk.note_read(buf)
            yield blk.compute(WORK)

        def host():
            yield from gpu.launch_h(BlockKernel(1, 256, body))
            yield from gpu.sync_h()

        engine.run(engine.process(host()))

    assert san.findings == []


def test_sanitizers_do_not_nest():
    with Sanitizer():
        with pytest.raises(RuntimeError, match="already active"):
            with Sanitizer():
                pass  # pragma: no cover


def test_unknown_check_id_rejected():
    with pytest.raises(ValueError, match="unknown sanitizer checks"):
        with Sanitizer(checks=["no-such-check"]):
            pass
