"""Bus semantics: the fast-path contract, dispatch order, ambient install."""

import pytest

from repro.obs import bus as obs_bus
from repro.obs.bus import COUNTER, INSTANT, SPAN, Bus, ObsEvent, TextLog
from repro.sim.engine import Engine


class Sink:
    def __init__(self):
        self.events = []
        self.attached = []

    def on_event(self, ev):
        self.events.append(ev)

    def on_attach(self, engine):
        self.attached.append(engine)


# -- fast-path contract ------------------------------------------------------

def test_attach_without_subscribers_keeps_obs_none():
    bus, eng = Bus(), Engine()
    bus.attach(eng)
    assert eng.obs is None


def test_subscribe_backfills_attached_engines():
    bus, eng = Bus(), Engine()
    bus.attach(eng)
    sink = Sink()
    bus.subscribe(sink)
    assert eng.obs is bus
    assert sink.attached == [eng]


def test_attach_after_subscribe_sets_obs_and_notifies():
    bus, sink = Bus(), Sink()
    bus.subscribe(sink)
    eng = Engine()
    bus.attach(eng)
    assert eng.obs is bus
    assert sink.attached == [eng]


def test_last_unsubscribe_restores_fast_path():
    bus, eng, sink = Bus(), Engine(), Sink()
    bus.subscribe(sink)
    bus.attach(eng)
    bus.unsubscribe(sink)
    assert eng.obs is None
    assert bus.subscribers == []


def test_double_subscribe_rejected():
    bus, sink = Bus(), Sink()
    bus.subscribe(sink)
    with pytest.raises(ValueError):
        bus.subscribe(sink)


def test_attach_is_idempotent():
    bus, eng = Bus(), Engine()
    bus.attach(eng)
    bus.attach(eng)
    assert bus.engines == (eng,)


# -- events ------------------------------------------------------------------

def test_span_instant_counter_kinds_and_seq_order():
    bus, sink = Bus(), Sink()
    bus.subscribe(sink)
    bus.span("link", "nvl0->1", None, 1.0, 2.0, nbytes=64)
    bus.instant("mpi", "am-rts", ("pe", 0), t=2.0, tag=7)
    bus.counter("stream", "s0", t=2.5, depth=3)
    kinds = [(ev.kind, ev.name, ev.seq) for ev in sink.events]
    assert kinds == [(SPAN, "nvl0->1", 1), (INSTANT, "am-rts", 2), (COUNTER, "s0", 3)]


def test_payload_is_sorted_and_queryable():
    bus, sink = Bus(), Sink()
    bus.subscribe(sink)
    bus.span("kernel", "k", ("gpu", 0), 0.0, 1.0, zeta=1, alpha=2)
    ev = sink.events[0]
    assert ev.payload == (("alpha", 2), ("zeta", 1))
    assert ev.get("zeta") == 1
    assert ev.get("missing", "d") == "d"


def test_instant_defaults_to_engine_clock():
    bus, eng, sink = Bus(), Engine(), Sink()
    bus.subscribe(sink)
    bus.attach(eng)
    eng.run(until=3.0)
    bus.instant("engine", "trace", msg="hi")
    ev = sink.events[0]
    assert ev.t0 == ev.t1 == 3.0
    assert ev.dur == 0.0


def test_dispatch_reaches_all_subscribers_in_order():
    bus, a, b = Bus(), Sink(), Sink()
    bus.subscribe(a)
    bus.subscribe(b)
    bus.instant("x", "y", t=0.0)
    assert len(a.events) == len(b.events) == 1
    assert a.events[0] is b.events[0]


def test_compact_degrades_objects_but_shares_scalars():
    class Buf:
        label = "gpu0.buf3"

    raw = ObsEvent(INSTANT, "san", "access", ("gpu", 0), 1.0, 1.0, 5,
                   (("buf", Buf()), ("write", True)))
    compact = raw.compact()
    assert compact.get("buf") == "<gpu0.buf3>"
    assert compact.get("write") is True
    scalar = ObsEvent(SPAN, "link", "l", None, 0.0, 1.0, 6, (("nbytes", 8),))
    assert scalar.compact() is scalar


def test_textlog_collects_engine_trace_instants_only():
    bus, log = Bus(), TextLog()
    bus.subscribe(log)
    bus.instant("engine", "trace", t=1.0, msg="hello")
    bus.instant("engine", "step", t=1.5, prio=0)
    bus.instant("mpi", "trace", t=2.0, msg="not-engine")
    assert log.lines == [(1.0, "hello")]


# -- ambient install ---------------------------------------------------------

def test_install_makes_new_engines_attach():
    bus, sink = Bus(), Sink()
    bus.subscribe(sink)
    obs_bus.install(bus)
    eng = Engine()
    assert eng.obs is bus
    assert obs_bus.uninstall() is bus
    assert Engine().obs is None


def test_second_install_rejected():
    obs_bus.install(Bus())
    with pytest.raises(RuntimeError):
        obs_bus.install(Bus())
    obs_bus.uninstall()


def test_uninstall_without_install_rejected():
    with pytest.raises(RuntimeError):
        obs_bus.uninstall()
