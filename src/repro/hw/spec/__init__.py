"""Declarative hardware layer: machine specs, typed link graph, routing.

Describe a machine (:class:`MachineSpec`) instead of hard-coding it: node
templates with GPUs, typed link classes, pair-mesh / switch / host-staged
interconnects, NIC placement.  :class:`LinkGraph` compiles a spec into a
routable directed graph; :class:`~repro.hw.topology.Fabric` resolves and
memoizes routes over it.  The GH200 testbed of the paper is just the
canonical catalog entry (:func:`gh200_spec`).
"""

from repro.hw.spec.catalog import (
    SPECS,
    as_spec,
    dgx_nvswitch_spec,
    gh200_node,
    gh200_spec,
    named_spec,
    pcie_nop2p_spec,
)
from repro.hw.spec.graph import LinkGraph, RouteSearchError
from repro.hw.spec.schema import (
    GpuSpec,
    Interconnect,
    LinkClass,
    MachineSpec,
    NodeSpec,
    SpecError,
)

__all__ = [
    "GpuSpec",
    "Interconnect",
    "LinkClass",
    "LinkGraph",
    "MachineSpec",
    "NodeSpec",
    "RouteSearchError",
    "SPECS",
    "SpecError",
    "as_spec",
    "dgx_nvswitch_spec",
    "gh200_node",
    "gh200_spec",
    "named_spec",
    "pcie_nop2p_spec",
]
