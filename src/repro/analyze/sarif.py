"""Minimal SARIF 2.1.0 export for CI annotation upload.

Emits one run with one tool driver ("repro-analyze"); each rule that
contributed a finding appears in the driver's rule table, and each
finding becomes a ``result`` with a single physical location.  The
subset emitted is what GitHub code-scanning ingestion requires.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.analyze.rules import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def to_sarif(findings: Iterable[Finding], rules: Dict[str, Rule]) -> dict:
    findings = list(findings)
    used = sorted({f.rule for f in findings})
    rule_index = {rid: i for i, rid in enumerate(used)}
    driver_rules: List[dict] = [
        {
            "id": rid,
            "shortDescription": {
                "text": rules[rid].summary if rid in rules else rid
            },
            "properties": {
                "family": rules[rid].family if rid in rules else "unknown"
            },
        }
        for rid in used
    ]
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {"startLine": max(1, f.line)},
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://example.invalid/repro",
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: Path, findings: Iterable[Finding], rules: Dict[str, Rule]) -> None:
    path.write_text(json.dumps(to_sarif(findings, rules), indent=2) + "\n")


def validate_sarif(obj: dict) -> None:
    """Structural sanity check used by tests and the CI smoke step."""
    assert obj.get("version") == SARIF_VERSION, "bad SARIF version"
    runs = obj.get("runs")
    assert isinstance(runs, list) and len(runs) == 1, "exactly one run expected"
    driver = runs[0]["tool"]["driver"]
    assert driver["name"] == "repro-analyze"
    ids = {r["id"] for r in driver["rules"]}
    for result in runs[0]["results"]:
        assert result["ruleId"] in ids, f"result rule {result['ruleId']} not declared"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1
