"""The six repro.san.lint invariants, migrated onto the analyzer.

Two guarantees: (1) on the real tree the new framework reports *exactly*
the findings the old linter reports, and (2) each rule still fires
(positive) and stays quiet (negative) when driven through the analyzer.
"""

import textwrap

from repro.san.lint import lint_tree

from .conftest import REPRO_SRC, rules_of


def test_migrated_rules_report_identical_findings(analyze_path):
    old = {(f.path, f.line, f.check) for f in lint_tree(REPRO_SRC)}
    invariant_ids = [
        "wallclock", "raw-units", "dropped-return",
        "obs-bypass", "eager-obs-payload", "fabric-bypass",
    ]
    new = {
        (f.path, f.line, f.rule)
        for f in analyze_path(REPRO_SRC, only=invariant_ids)
    }
    assert new == old
    assert old == set()          # and the tree itself is lint-clean


CASES = {
    "wallclock": (
        "import time\n\ndef f():\n    return time.monotonic()\n",
        "def f(now):\n    return now\n",
    ),
    "raw-units": (
        "DELAY = 1e-6\n",
        "from repro.units import us\nDELAY = us(1)\n",
    ),
    "dropped-return": (
        "def body():\n    yield 1\n    return 42\n\n"
        "def go(engine):\n    engine.process(body())\n",
        "def body():\n    yield 1\n    return 42\n\n"
        "def go(engine):\n    ev = engine.process(body())\n    return ev\n",
    ),
    "obs-bypass": (
        "def f(x):\n    print(x)\n",
        "def f(obs, x):\n    obs.instant('lane', 'msg', 0)\n",
    ),
    "eager-obs-payload": (
        "def f(engine, x):\n    engine.trace(f'value {x}')\n",
        "def f(engine, x):\n"
        "    obs = engine.obs\n"
        "    if obs is not None:\n"
        "        obs.instant('lane', f'value {x}', 0)\n",
    ),
    "fabric-bypass": (
        "def f(fabric, desc):\n    fabric.transfer(desc)\n",
        "def f(fabric, desc):\n    fabric.dataplane.put(desc)\n",
    ),
}


def test_each_invariant_rule_positive_and_negative(analyze):
    for rule, (bad, good) in CASES.items():
        core = "src/repro/sim/mod.py"
        hits = analyze({core: textwrap.dedent(bad)}, only=[rule])
        assert rules_of(hits) == [rule], f"{rule}: expected a finding"
        clean = analyze({core: textwrap.dedent(good)}, only=[rule])
        assert clean == [], f"{rule}: false positive on {clean}"


def test_old_cli_shim_still_green_on_repo():
    from repro.san.lint import main

    assert main([str(REPRO_SRC)]) == 0
