"""Trace-replay ingestion: versioned JSONL schedules replayed anywhere.

A replay schedule is a JSONL file — one header line plus one step per
line — describing per-rank communication the way production trace tools
dump it (NCCL per-step logs, LLM training patterns, Chrome traces
exported by :mod:`repro.obs`):

.. code-block:: text

    {"schema": "repro.workload.replay/1", "ranks": 4, "name": "demo"}
    {"rank": 0, "op": "compute", "us": 120.0}
    {"rank": 0, "op": "send", "peer": 1, "bytes": 65536, "class": "pp-activation", "tag": "act"}
    {"rank": 1, "op": "recv", "peer": 0, "bytes": 65536, "tag": "act"}
    {"rank": 0, "op": "allreduce", "bytes": 1048576, "group": [0, 1, 2, 3]}

Step vocabulary (all sizes in bytes, times in microseconds):

``compute``
    Pure busy time on the rank: ``us``.
``send`` / ``recv``
    Two-sided message, matched per ``(sender, receiver, tag)`` channel in
    occurrence order.  ``class`` tags the traffic for the per-class
    ledger; a ``recv`` that states ``bytes`` must agree with its matched
    send.  A ``recv`` may give the wildcard tag ``"*"`` — it matches the
    sender's next unmatched send *regardless of tag*, in schedule order,
    the way lossy NCCL-style logs record arrivals without tags.  A
    (sender, receiver) pair must be all-wildcard or all-tagged: mixing
    the two would make matching ambiguous and is rejected.
``put``
    One-sided write: times the wire like a send, no matching recv.
``partitioned``
    A partitioned send: ``partitions`` chunks of ``bytes`` total; the
    matched ``recv`` completes when every chunk has landed.
``allreduce`` / ``barrier``
    Collective over ``group`` (default: all ranks); every member must
    list the same collective sequence.  Lowered to the ring
    reduce-scatter + allgather schedule (2·(n−1) rounds of
    ``ceil(bytes/n)`` chunks).  ``barrier`` is an 8-byte allreduce under
    traffic class ``replay-barrier``.
``xfer``
    A raw endpoint-addressed transfer (``src_gpu``/``src_node`` →
    ``dst_gpu``/``dst_node``) — the form :func:`from_chrome` emits when
    ingesting an exported Chrome trace; world-mode only.

Steps may carry an ``id`` and ``deps`` (ids of earlier steps on the same
rank).  Execution is strictly in-order per rank, so deps are validated
documentation: a dep referencing a later or unknown id is an error.

Validation failures raise :class:`ReplayError` with ``file:line:``
prefixes.  Replay is deterministic: the same schedule on the same
machine under the same policy reproduces every byte, timestamp, and
digest — the schedule's SHA-256 is folded into the sweep cache key.

Execution picks the engine by machine shape: multi-node specs replay
under the sharded cluster engine (``shards=N`` fans out workers;
results stay bit-identical), single-node machines — or schedules with
``xfer`` steps — replay on one engine against the full fabric.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.series import Series
from repro.hw.spec.catalog import as_spec
from repro.hw.topology import MachineLike
from repro.units import us
from repro.workload.base import (
    ExecOutcome,
    Workload,
    WorkloadError,
    canonical_json,
    sha256_hex,
)

SCHEMA = "repro.workload.replay/1"

#: Default traffic class for steps that do not tag one.
DEFAULT_CLASS = "replay"
BARRIER_CLASS = "replay-barrier"
BARRIER_BYTES = 8

#: recv-side wildcard tag: match the peer's sends in schedule order.
WILDCARD_TAG = "*"

_P2P_SEND_OPS = ("send", "put", "partitioned")
_COLLECTIVE_OPS = ("allreduce", "barrier")
_OPS = ("compute", "recv", "xfer") + _P2P_SEND_OPS + _COLLECTIVE_OPS


class ReplayError(WorkloadError):
    """A schedule failed validation; message carries ``file:line:``."""


# --------------------------------------------------------------------------
# schedule model + parsing
# --------------------------------------------------------------------------

@dataclass
class Step:
    rank: int
    op: str
    line: int                           # 1-based source line (diagnostics)
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


@dataclass
class Schedule:
    """A validated replay schedule: header + per-line steps."""

    ranks: int
    steps: List[Step]
    name: str = ""
    source: str = "<schedule>"

    @property
    def digest(self) -> str:
        """Content identity: SHA-256 over the canonical step stream."""
        doc = {
            "schema": SCHEMA,
            "ranks": self.ranks,
            "name": self.name,
            "steps": [
                {"rank": s.rank, "op": s.op, **s.fields} for s in self.steps
            ],
        }
        return sha256_hex(canonical_json(doc))

    def has_op(self, op: str) -> bool:
        return any(s.op == op for s in self.steps)

    def to_jsonl(self) -> str:
        lines = [json.dumps(
            {"schema": SCHEMA, "ranks": self.ranks, "name": self.name},
            sort_keys=True,
        )]
        for s in self.steps:
            lines.append(json.dumps(
                {"rank": s.rank, "op": s.op, **s.fields}, sort_keys=True
            ))
        return "\n".join(lines) + "\n"


def _err(source: str, line: int, msg: str) -> ReplayError:
    return ReplayError(f"{source}:{line}: {msg}")


def _want_int(source: str, line: int, doc: dict, key: str, what: str,
              lo: Optional[int] = None, hi: Optional[int] = None) -> int:
    value = doc.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _err(source, line, f"{what}: field {key!r} must be an integer, got {value!r}")
    if lo is not None and value < lo:
        raise _err(source, line, f"{what}: field {key!r} must be >= {lo}, got {value}")
    if hi is not None and value >= hi:
        raise _err(source, line, f"{what}: field {key!r} must be < {hi}, got {value}")
    return value


def _endpoint(source: str, line: int, doc: dict, side: str) -> Tuple[str, int]:
    gpu = doc.get(f"{side}_gpu")
    node = doc.get(f"{side}_node")
    if gpu is not None:
        if not isinstance(gpu, int) or isinstance(gpu, bool) or gpu < 0:
            raise _err(source, line, f"xfer: {side}_gpu must be a non-negative integer, got {gpu!r}")
        return ("g", gpu)
    if node is not None:
        if not isinstance(node, int) or isinstance(node, bool) or node < 0:
            raise _err(source, line, f"xfer: {side}_node must be a non-negative integer, got {node!r}")
        return ("h", node)
    raise _err(source, line, f"xfer: needs {side}_gpu or {side}_node")


def parse_jsonl(text: str, source: str = "<schedule>") -> Schedule:
    """Parse + validate one JSONL schedule; raises :class:`ReplayError`."""
    header: Optional[dict] = None
    header_line = 0
    steps: List[Step] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            raise _err(source, lineno, f"not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise _err(source, lineno, f"expected a JSON object, got {type(doc).__name__}")
        if header is None:
            if "schema" not in doc:
                raise _err(source, lineno, "first line must be the header "
                           f'{{"schema": "{SCHEMA}", "ranks": N}}')
            if doc["schema"] != SCHEMA:
                raise _err(source, lineno,
                           f"unsupported schema {doc['schema']!r} (want {SCHEMA!r})")
            header = doc
            header_line = lineno
            continue
        if "schema" in doc:
            raise _err(source, lineno, "duplicate header line")
        op = doc.get("op")
        if op not in _OPS:
            raise _err(source, lineno,
                       f"unknown op {op!r}; known: {', '.join(_OPS)}")
        rank = doc.get("rank")
        if not isinstance(rank, int) or isinstance(rank, bool):
            raise _err(source, lineno, f"step needs an integer 'rank', got {rank!r}")
        fields = {k: v for k, v in doc.items() if k not in ("rank", "op")}
        steps.append(Step(rank=rank, op=op, line=lineno, fields=fields))
    if header is None:
        raise _err(source, 1, "empty schedule: missing header line")
    ranks = _want_int(source, header_line, header, "ranks", "header", lo=1)
    sched = Schedule(
        ranks=ranks, steps=steps,
        name=str(header.get("name", "")), source=source,
    )
    _validate(sched)
    return sched


def load_schedule(path: str) -> Schedule:
    with open(path) as fh:
        return parse_jsonl(fh.read(), source=path)


def _validate(sched: Schedule) -> None:
    src_name, ranks = sched.source, sched.ranks
    ids_seen: Dict[int, set] = {r: set() for r in range(ranks)}
    # (sender, receiver, tag) -> [send steps] / [recv steps], occurrence order
    sends: Dict[Tuple[int, int, Any], List[Step]] = {}
    recvs: Dict[Tuple[int, int, Any], List[Step]] = {}
    # (sender, receiver) -> [wildcard recv steps], occurrence order
    wilds: Dict[Tuple[int, int], List[Step]] = {}
    # group tuple -> rank -> [(op, bytes, class), ...]
    colls: Dict[Tuple[int, ...], Dict[int, List[Tuple]]] = {}

    for s in sched.steps:
        what = f"op {s.op!r}"
        if not 0 <= s.rank < ranks:
            raise _err(src_name, s.line, f"rank {s.rank} out of range (header ranks={ranks})")
        if s.op == "compute":
            dt = s.get("us")
            if not isinstance(dt, (int, float)) or isinstance(dt, bool) or dt < 0:
                raise _err(src_name, s.line, f"{what}: field 'us' must be a non-negative number, got {dt!r}")
        elif s.op in ("send", "put", "partitioned", "recv"):
            peer = _want_int(src_name, s.line, s.fields, "peer", what, lo=0, hi=ranks)
            if peer == s.rank:
                raise _err(src_name, s.line, f"{what}: peer {peer} is the step's own rank")
            if s.op != "recv":
                _want_int(src_name, s.line, s.fields, "bytes", what, lo=1)
            elif "bytes" in s.fields:
                _want_int(src_name, s.line, s.fields, "bytes", what, lo=1)
            if s.op == "partitioned":
                _want_int(src_name, s.line, s.fields, "partitions", what, lo=1)
            tag = s.get("tag", 0)
            if not isinstance(tag, (str, int)) or isinstance(tag, bool):
                raise _err(src_name, s.line, f"{what}: field 'tag' must be a string or integer, got {tag!r}")
            if tag == WILDCARD_TAG and s.op != "recv":
                raise _err(src_name, s.line,
                           f"{what}: the wildcard tag {WILDCARD_TAG!r} is recv-only")
            if s.op == "recv":
                if tag == WILDCARD_TAG:
                    wilds.setdefault((peer, s.rank), []).append(s)
                else:
                    recvs.setdefault((peer, s.rank, tag), []).append(s)
            elif s.op != "put":
                sends.setdefault((s.rank, peer, tag), []).append(s)
        elif s.op in _COLLECTIVE_OPS:
            if s.op == "allreduce":
                _want_int(src_name, s.line, s.fields, "bytes", what, lo=1)
            group = s.get("group")
            if group is None:
                members = tuple(range(ranks))
            else:
                if not isinstance(group, list) or not group:
                    raise _err(src_name, s.line, f"{what}: field 'group' must be a non-empty list of ranks")
                for g in group:
                    if not isinstance(g, int) or isinstance(g, bool) or not 0 <= g < ranks:
                        raise _err(src_name, s.line, f"{what}: group member {g!r} out of range (ranks={ranks})")
                if len(set(group)) != len(group):
                    raise _err(src_name, s.line, f"{what}: group has duplicate members: {group}")
                members = tuple(sorted(group))
            if s.rank not in members:
                raise _err(src_name, s.line, f"{what}: rank {s.rank} is not in its own group {list(members)}")
            if len(members) > 1:
                sig = (s.op, s.get("bytes", BARRIER_BYTES), s.get("class"))
                colls.setdefault(members, {}).setdefault(s.rank, []).append((sig, s))
        elif s.op == "xfer":
            _want_int(src_name, s.line, s.fields, "bytes", what, lo=1)
            _endpoint(src_name, s.line, s.fields, "src")
            _endpoint(src_name, s.line, s.fields, "dst")
        cls = s.get("class")
        if cls is not None and not isinstance(cls, str):
            raise _err(src_name, s.line, f"{what}: field 'class' must be a string, got {cls!r}")
        sid = s.get("id")
        if sid is not None:
            if not isinstance(sid, str) or not sid:
                raise _err(src_name, s.line, f"{what}: field 'id' must be a non-empty string")
            if sid in ids_seen[s.rank]:
                raise _err(src_name, s.line, f"{what}: duplicate id {sid!r} on rank {s.rank}")
        deps = s.get("deps")
        if deps is not None:
            if not isinstance(deps, list):
                raise _err(src_name, s.line, f"{what}: field 'deps' must be a list of step ids")
            for dep in deps:
                if dep not in ids_seen[s.rank]:
                    raise _err(
                        src_name, s.line,
                        f"{what}: dep {dep!r} does not name an earlier step of "
                        f"rank {s.rank} (execution is in-order per rank)",
                    )
        if sid is not None:
            ids_seen[s.rank].add(sid)

    # Wildcard matching: pair-wide, in schedule order across all tags.
    for pair in sorted(wilds):
        src_rank, dst_rank = pair
        tagged = [
            chan for chan in recvs
            if (chan[0], chan[1]) == pair and recvs[chan]
        ]
        if tagged:
            ref = wilds[pair][0]
            raise _err(
                src_name, ref.line,
                f"channel {src_rank}->{dst_rank}: wildcard and tagged recvs "
                "mix on the same pair — matching would be ambiguous",
            )
        pair_sends = sorted(
            (snd for chan, ss in sends.items()
             if (chan[0], chan[1]) == pair for snd in ss),
            key=lambda s: s.line,
        )
        if len(pair_sends) != len(wilds[pair]):
            ref = wilds[pair][0]
            raise _err(
                src_name, ref.line,
                f"channel {src_rank}->{dst_rank}: {len(pair_sends)} send(s) "
                f"but {len(wilds[pair])} wildcard recv(s) — counts must match "
                "pair-wide",
            )
        for occ, (snd, rcv) in enumerate(zip(pair_sends, wilds[pair])):
            if "bytes" in rcv.fields and rcv["bytes"] != snd["bytes"]:
                raise _err(
                    src_name, rcv.line,
                    f"channel {src_rank}->{dst_rank} wildcard occurrence "
                    f"{occ}: recv states {rcv['bytes']} bytes but the matched "
                    f"send (line {snd.line}) sends {snd['bytes']}",
                )

    # Two-sided matching: same channel, same count, agreeing sizes.
    wild_pairs = set(wilds)
    for chan in sorted(set(sends) | set(recvs), key=repr):
        src_rank, dst_rank, tag = chan
        if (src_rank, dst_rank) in wild_pairs:
            continue  # consumed by pair-wide wildcard matching above
        ns, nr = len(sends.get(chan, ())), len(recvs.get(chan, ()))
        if ns != nr:
            ref = (sends.get(chan) or recvs.get(chan))[0]
            raise _err(
                src_name, ref.line,
                f"channel {src_rank}->{dst_rank} tag {tag!r}: {ns} send(s) but "
                f"{nr} recv(s) — two-sided steps must match per channel",
            )
        for occ, (snd, rcv) in enumerate(zip(sends[chan], recvs[chan])):
            if "bytes" in rcv.fields and rcv["bytes"] != snd["bytes"]:
                raise _err(
                    src_name, rcv.line,
                    f"channel {src_rank}->{dst_rank} tag {tag!r} occurrence "
                    f"{occ}: recv states {rcv['bytes']} bytes but the matched "
                    f"send (line {snd.line}) sends {snd['bytes']}",
                )

    # Collective agreement: every member lists the same sequence.
    for members, by_rank in colls.items():
        missing = [r for r in members if r not in by_rank]
        if missing:
            ref = next(iter(by_rank.values()))[0][1]
            raise _err(
                src_name, ref.line,
                f"collective group {list(members)}: rank(s) {missing} never "
                "join — every member must list the same collective sequence",
            )
        counts = {r: len(v) for r, v in by_rank.items()}
        first = by_rank[members[0]]
        for r in members[1:]:
            if counts[r] != counts[members[0]]:
                raise _err(
                    src_name, by_rank[r][0][1].line,
                    f"collective group {list(members)}: rank {members[0]} has "
                    f"{counts[members[0]]} collective step(s) but rank {r} has {counts[r]}",
                )
            for occ, ((sig_a, step_a), (sig_b, step_b)) in enumerate(zip(first, by_rank[r])):
                if sig_a != sig_b:
                    raise _err(
                        src_name, step_b.line,
                        f"collective group {list(members)} occurrence {occ}: "
                        f"rank {r} lists {sig_b} but rank {members[0]} lists "
                        f"{sig_a} (line {step_a.line})",
                    )


# --------------------------------------------------------------------------
# lowering to per-rank micro-ops
# --------------------------------------------------------------------------
# Micro-ops are plain picklable tuples (the cluster build ships them to
# worker processes):
#   ("compute", dt_seconds)
#   ("send", dst_rank, nbytes, traffic_class, key_or_None)  # key signals recv
#   ("wait", src_rank, key)
#   ("xfer", src_ep, dst_ep, nbytes, traffic_class)         # ep = ("g",i)|("h",i)

def lower(sched: Schedule) -> Dict[int, List[tuple]]:
    """Lower the schedule to per-rank micro-op lists (rank r -> GPU r)."""
    ops: Dict[int, List[tuple]] = {r: [] for r in range(sched.ranks)}
    send_occ: Dict[Tuple[int, int, Any], int] = {}
    recv_occ: Dict[Tuple[int, int, Any], int] = {}
    wild_occ: Dict[Tuple[int, int], int] = {}
    send_info: Dict[Tuple[int, int, Any], List[Step]] = {}
    # (sender, receiver) -> [(chan, chan-occurrence, step)], schedule order
    # — wildcard recvs match pair-wide but wait on the matched send's own
    # channel keys, so send lowering never needs to know about wildcards.
    pair_sends: Dict[Tuple[int, int], List[Tuple[Tuple, int, Step]]] = {}
    coll_occ: Dict[Tuple[int, ...], Dict[int, int]] = {}
    groups: List[Tuple[int, ...]] = []

    for s in sched.steps:
        if s.op in ("send", "partitioned"):
            chan = (s.rank, s["peer"], s.get("tag", 0))
            pre = send_info.setdefault(chan, [])
            pair_sends.setdefault((s.rank, s["peer"]), []).append(
                (chan, len(pre), s)
            )
            pre.append(s)

    def chunk_sizes(total: int, parts: int) -> List[int]:
        base, rem = divmod(total, parts)
        return [base + (1 if i < rem else 0) for i in range(parts)]

    for s in sched.steps:
        out = ops[s.rank]
        cls = s.get("class") or DEFAULT_CLASS
        if s.op == "compute":
            out.append(("compute", float(s["us"]) * us))
        elif s.op == "put":
            out.append(("send", s["peer"], s["bytes"], cls, None))
        elif s.op in ("send", "partitioned"):
            chan = (s.rank, s["peer"], s.get("tag", 0))
            occ = send_occ.get(chan, 0)
            send_occ[chan] = occ + 1
            parts = s.get("partitions", 1) if s.op == "partitioned" else 1
            for i, nbytes in enumerate(chunk_sizes(s["bytes"], parts)):
                if nbytes:
                    out.append(("send", s["peer"], nbytes, cls,
                                ("p",) + chan + (occ, i)))
        elif s.op == "recv":
            tag = s.get("tag", 0)
            if tag == WILDCARD_TAG:
                pair = (s["peer"], s.rank)
                j = wild_occ.get(pair, 0)
                wild_occ[pair] = j + 1
                chan, occ, snd = pair_sends[pair][j]
            else:
                chan = (s["peer"], s.rank, tag)
                occ = recv_occ.get(chan, 0)
                recv_occ[chan] = occ + 1
                snd = send_info[chan][occ]
            parts = snd.get("partitions", 1) if snd.op == "partitioned" else 1
            for i, nbytes in enumerate(chunk_sizes(snd["bytes"], parts)):
                if nbytes:
                    out.append(("wait", s["peer"], ("p",) + chan + (occ, i)))
        elif s.op in _COLLECTIVE_OPS:
            group = s.get("group")
            members = tuple(sorted(group)) if group is not None else tuple(range(sched.ranks))
            if len(members) == 1:
                continue
            if members not in coll_occ:
                coll_occ[members] = {}
                groups.append(members)
            gid = groups.index(members)
            occ = coll_occ[members].get(s.rank, 0)
            coll_occ[members][s.rank] = occ + 1
            if s.op == "barrier":
                nbytes, cls = BARRIER_BYTES, s.get("class") or BARRIER_CLASS
            else:
                nbytes = s["bytes"]
            n = len(members)
            me = members.index(s.rank)
            right = members[(me + 1) % n]
            left = members[(me - 1) % n]
            chunk = max((nbytes + n - 1) // n, 1)
            for rnd in range(2 * (n - 1)):
                out.append(("send", right, chunk, cls, ("c", gid, occ, rnd, s.rank)))
                out.append(("wait", left, ("c", gid, occ, rnd, left)))
        elif s.op == "xfer":
            src_ep = _endpoint(sched.source, s.line, s.fields, "src")
            dst_ep = _endpoint(sched.source, s.line, s.fields, "dst")
            out.append(("xfer", src_ep, dst_ep, s["bytes"], cls))
    return ops


# --------------------------------------------------------------------------
# rendezvous board
# --------------------------------------------------------------------------

class _Board:
    """Key -> one-shot Event rendezvous between same-engine processes.

    Either side may arrive first: the event is created on first touch,
    succeeded once by the signaller, and yielding an already-processed
    event resumes the waiter immediately (see ``Process._wait_on``).
    """

    def __init__(self, engine):
        self.engine = engine
        self._events: Dict[Any, Any] = {}

    def _ev(self, key):
        ev = self._events.get(key)
        if ev is None:
            ev = self._events[key] = self.engine.event()
        return ev

    def signal(self, key) -> None:
        self._ev(key).succeed()

    def wait(self, key):
        return self._ev(key)


# --------------------------------------------------------------------------
# world-mode interpreter (single engine, full fabric)
# --------------------------------------------------------------------------

def _replay_on_fabric(
    machine: MachineLike, ops: Dict[int, List[tuple]], graphs: bool = False,
) -> dict:
    """Replay lowered ops on one engine + fabric; returns run facts.

    With ``graphs=True`` the rank programs run on a private
    :class:`~repro.dataplane.graph.GraphEngine` behind a *single* host
    graph-launch event (stream-triggered issue: the host heap sees one
    pop, not one per descriptor), with descriptor plans cached across
    repeated submissions.  Timestamps and the per-class ledger are
    bit-identical to the eager path; only where the pops are counted
    changes (``events_graphed`` vs ``events_popped``).
    """
    from repro.hw.memory import Buffer, MemSpace
    from repro.hw.topology import Fabric
    from repro.sim.engine import Engine

    import numpy as np

    if graphs:
        from repro.dataplane.graph import GRAPHS, GraphEngine

        host = Engine()
        engine: Engine = GraphEngine()
    else:
        host = None
        engine = Engine()
    fabric = Fabric(engine, machine)
    topo = fabric.topo
    dataplane = fabric.dataplane
    board = _Board(engine)

    anchors: Dict[Tuple[str, int, str], Any] = {}

    def anchor(ep: Tuple[str, int], side: str):
        """1-byte virtual endpoint buffer; distinct src/dst per endpoint."""
        key = (ep[0], ep[1], side)
        buf = anchors.get(key)
        if buf is None:
            if ep[0] == "g":
                buf = Buffer.alloc_virtual(
                    1, np.uint8, MemSpace.DEVICE,
                    node=topo.node_of(ep[1]), gpu=ep[1],
                    label=f"replay.g{ep[1]}.{side}",
                )
            else:
                buf = Buffer.alloc_virtual(
                    1, np.uint8, MemSpace.HOST, node=ep[1],
                    label=f"replay.h{ep[1]}.{side}",
                )
            anchors[key] = buf
        return buf

    def rank_proc(rank: int, my_ops: List[tuple]):
        for i, op in enumerate(my_ops):
            kind = op[0]
            if kind == "compute":
                yield engine.timeout(op[1])
            elif kind == "send":
                _, dst, nbytes, cls, key = op
                yield dataplane.control(
                    anchor(("g", rank), "src"), anchor(("g", dst), "dst"),
                    nbytes, traffic_class=cls, name=f"replay.r{rank}.{i}",
                )
                if key is not None:
                    board.signal(key)
            elif kind == "wait":
                yield board.wait(op[2])
            elif kind == "xfer":
                _, src_ep, dst_ep, nbytes, cls = op
                yield dataplane.control(
                    anchor(src_ep, "src"), anchor(dst_ep, "dst"),
                    nbytes, traffic_class=cls, name=f"replay.r{rank}.{i}",
                )

    if graphs:
        dataplane.enable_plan_cache()

    procs = [
        engine.process(rank_proc(rank, rank_ops), name=f"replay.r{rank}")
        for rank, rank_ops in sorted(ops.items())
        if rank_ops
    ]
    if host is not None:
        def launcher():
            # One host event replays the whole captured program: the
            # graph engine drains synchronously, then the host clock
            # advances to the graph's completion time.
            engine.run()
            GRAPHS.launches += 1
            yield host.timeout_at(engine.now)

        host.process(launcher(), name="replay.graph-launch")
        host.run()
    else:
        engine.run()
    for p in procs:
        if not p.ok:  # pragma: no cover - surfacing simulation bugs
            raise RuntimeError(f"replay rank failed: {p.value!r}")
    facts = {
        "t_end": engine.now,
        "class_bytes": dataplane.ledger.as_dict(),
    }
    if graphs:
        cache = dataplane.plan_cache
        facts["graphs"] = {
            "graph_launches": 1,
            "events_graphed": engine.events_popped,
            "captured_plans": cache.misses,
            "replayed_descriptors": cache.hits,
        }
    return facts


# --------------------------------------------------------------------------
# the workload
# --------------------------------------------------------------------------

class ReplayWorkload(Workload):
    """Replay one validated schedule on any machine."""

    supports_shards = True
    default_machine = "gh200-2x4"

    def __init__(self, schedule: Schedule):
        self.schedule = schedule
        self.name = f"replay:{schedule.name}" if schedule.name else "replay"
        self.defaults = {}

    @classmethod
    def from_file(cls, path: str) -> "ReplayWorkload":
        return cls(load_schedule(path))

    def fingerprint(self, **params: Any) -> dict:
        return {
            "workload": "replay",
            "schedule": self.schedule.digest,
            "params": {**self.defaults, **params},
        }

    def _mode(self, spec) -> str:
        if spec.n_nodes >= 2 and not self.schedule.has_op("xfer"):
            return "cluster"
        return "world"

    def _execute(self, machine: Optional[MachineLike], shards, **params) -> ExecOutcome:
        sched = self.schedule
        spec = as_spec(machine)
        n_gpus = spec.n_gpus
        if sched.ranks > n_gpus:
            raise ReplayError(
                f"{sched.source}: schedule needs {sched.ranks} rank(s) but "
                f"{spec.name} has {n_gpus} GPU(s)"
            )
        ops = lower(sched)
        mode = self._mode(spec)
        if shards is not None and mode != "cluster":
            raise ReplayError(
                f"{sched.source}: shards={shards} needs a multi-node machine "
                "and an xfer-free schedule (single-engine replay is unsharded)"
            )
        if mode == "cluster":
            return self._execute_cluster(spec, ops, shards)
        from repro.dataplane.graph import graphs_enabled

        facts = _replay_on_fabric(machine, ops, graphs=graphs_enabled())
        series = self._series(facts["class_bytes"], facts["t_end"])
        extra = {"t_end": facts["t_end"], "ranks": sched.ranks,
                 "steps": len(sched.steps)}
        if "graphs" in facts:
            extra["graphs"] = facts["graphs"]
        return ExecOutcome(
            series=series,
            mode="world",
            class_bytes=facts["class_bytes"],
            digests={"schedule": sched.digest},
            extra=extra,
        )

    def _execute_cluster(self, spec, ops, shards) -> ExecOutcome:
        from repro.dataplane.graph import graphs_enabled
        from repro.shard import ClusterJob

        job = ClusterJob(
            spec, "replay",
            cfg={"ops": ops, "graphs": graphs_enabled()},
            collect_steps=True,
        )
        result = job.run(workers=shards)
        sig = result.signature()
        series = self._series(
            {cls: {"bytes": b, "transfers": None}
             for cls, b in sig.get("bytes_by_class", {}).items()},
            sig["t_end"],
        )
        digests = {"schedule": self.schedule.digest, "msg": sig["msg_digest"]}
        for shard_id, step_digest in sorted(sig.get("step_digests", {}).items()):
            digests[f"steps_shard{shard_id}"] = step_digest
        return ExecOutcome(
            series=series,
            mode=result.mode,
            class_bytes=sig.get("bytes_by_class", {}),
            digests=digests,
            extra={"signature": sig, "ranks": self.schedule.ranks,
                   "steps": len(self.schedule.steps),
                   "graphs": {"graph_launches": result.graph_launches,
                              "events_graphed": result.events_graphed}},
            events_popped=sig["events_popped"],
        )

    def _series(self, class_bytes: dict, t_end: float) -> Series:
        s = Series(
            self.name,
            f"trace replay, {self.schedule.ranks} rank(s), "
            f"{len(self.schedule.steps)} step(s)",
            ["traffic_class", "bytes", "transfers"],
        )
        for cls in sorted(class_bytes):
            row = class_bytes[cls]
            if isinstance(row, dict):
                s.add(traffic_class=cls, bytes=row["bytes"],
                      transfers=row.get("transfers"))
            else:
                s.add(traffic_class=cls, bytes=row, transfers=None)
        s.note(f"t_end={t_end!r}")
        return s


# --------------------------------------------------------------------------
# Chrome-trace ingestion
# --------------------------------------------------------------------------

def from_chrome(trace: dict, name: str = "chrome-ingest") -> Schedule:
    """Build a replay schedule from an exported Chrome trace.

    Reads the ``dataplane`` instants the dataplane emits per accounted
    descriptor (src/dst endpoint, traffic class, wire bytes) and turns
    each into an ``xfer`` step, in timestamp order.  Replaying the result
    reproduces the original run's per-class ledger byte and transfer
    counts on the same machine.  Only unsharded runs round-trip this way:
    bridge-claimed cross-shard descriptors never reach the dataplane
    accounting point.
    """
    events = [
        ev for ev in trace.get("traceEvents", [])
        if ev.get("ph") == "i" and ev.get("cat") == "dataplane"
    ]
    events.sort(key=lambda ev: ev.get("ts", 0))
    steps: List[Step] = []
    max_gpu = -1
    for i, ev in enumerate(events):
        args = ev.get("args", {})
        fields: Dict[str, Any] = {
            "bytes": args["nbytes"], "class": args.get("cls", DEFAULT_CLASS),
        }
        for side in ("src", "dst"):
            gpu, node = args.get(f"{side}_gpu"), args.get(f"{side}_node")
            if gpu is not None:
                fields[f"{side}_gpu"] = gpu
                max_gpu = max(max_gpu, gpu)
            else:
                fields[f"{side}_node"] = node if node is not None else 0
        rank = fields.get("src_gpu", 0)
        steps.append(Step(rank=rank, op="xfer", line=i + 2, fields=fields))
    ranks = max(max_gpu + 1, 1)
    sched = Schedule(ranks=ranks, steps=steps, name=name, source=f"<{name}>")
    _validate(sched)
    return sched
