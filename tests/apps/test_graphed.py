"""Graph-captured app variants: same numerics and clock as eager paths."""

import numpy as np
import pytest

from repro.apps.dl import DlConfig, run_dl
from repro.apps.jacobi import JacobiConfig, run_jacobi, serial_jacobi
from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.world import World


def _jacobi(ctx, cfg):
    return (yield from run_jacobi(ctx, cfg))


def _dl(ctx, cfg):
    return (yield from run_dl(ctx, cfg))


def _assemble(results, tile, py, px):
    glob = np.zeros((py * tile + 2, px * tile + 2))
    for res in results:
        ry, rx = res.coords
        glob[1 + ry * tile:1 + (ry + 1) * tile,
             1 + rx * tile:1 + (rx + 1) * tile] = res.local[1:-1, 1:-1]
    return glob


def test_jacobi_graphed_matches_serial_4_ranks():
    cfg = JacobiConfig(multiplier=1, base_tile=16, iters=10, variant="graphed")
    results = World(ONE_NODE).run(_jacobi, nprocs=4, args=(cfg,))
    glob = _assemble(results, cfg.tile, 2, 2)
    ref = serial_jacobi(2 * cfg.tile, 2 * cfg.tile, cfg.iters)
    assert np.allclose(glob[1:-1, 1:-1], ref[1:-1, 1:-1])


def test_jacobi_graphed_matches_serial_8_ranks_two_nodes():
    cfg = JacobiConfig(multiplier=1, base_tile=8, iters=8, variant="graphed")
    results = World(PAPER_TESTBED).run(_jacobi, nprocs=8, args=(cfg,))
    glob = _assemble(results, cfg.tile, 4, 2)
    ref = serial_jacobi(4 * cfg.tile, 2 * cfg.tile, cfg.iters)
    assert np.allclose(glob[1:-1, 1:-1], ref[1:-1, 1:-1])


def test_jacobi_graphed_time_identical_without_graphs(monkeypatch):
    cfg = JacobiConfig(multiplier=1, base_tile=8, iters=6, variant="graphed")

    def solve():
        return World(ONE_NODE).run(_jacobi, nprocs=4, args=(cfg,))

    on = solve()
    monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
    off = solve()
    assert [r.time for r in on] == [r.time for r in off]
    for a, b in zip(on, off):
        assert np.allclose(a.local, b.local)


def test_dl_graphed_matches_nccl_numerics():
    def run(variant):
        cfg = DlConfig(grid=16, block=1024, steps=3, variant=variant)
        return World(ONE_NODE).run(_dl, nprocs=4, args=(cfg,))

    graphed = run("graphed")
    nccl = run("nccl")
    assert np.allclose(graphed[0].grad, nccl[0].grad)
    for g, n in zip(graphed, nccl):
        assert g.losses == pytest.approx(n.losses)
    base = graphed[0].grad
    for r in graphed[1:]:
        assert np.allclose(r.grad, base)


def test_dl_graphed_time_identical_without_graphs(monkeypatch):
    def run():
        cfg = DlConfig(grid=16, block=1024, steps=3, variant="graphed")
        return World(ONE_NODE).run(_dl, nprocs=4, args=(cfg,))

    on = run()
    monkeypatch.setenv("REPRO_NO_GRAPHS", "1")
    off = run()
    assert [r.time for r in on] == [r.time for r in off]
    for a, b in zip(on, off):
        assert a.losses == b.losses
        assert np.allclose(a.grad, b.grad)
