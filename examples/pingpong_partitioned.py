#!/usr/bin/env python3
"""Compare the three communication models on a GPU ping workload.

Sweeps kernel grid sizes and prints intra-node goodput for:

* traditional MPI_Send/Recv after cudaStreamSynchronize (Listing 1),
* GPU-initiated partitioned, Progression-Engine copies,
* GPU-initiated partitioned, Kernel-Copy (direct NVLink stores),

i.e. a compact regeneration of the paper's Fig 4 plus the inter-node
Fig 5 columns.

    python examples/pingpong_partitioned.py
"""

from repro.bench.p2p import TWO_NODE_PAIR, measure_p2p_goodput
from repro.hw.params import ONE_NODE
from repro.units import GBps

GRIDS = (1, 16, 256, 2048, 32768)


def main() -> None:
    print("intra-node (two GH200, one node)  [GB/s]")
    print(f"{'grid':>7} {'send/recv':>10} {'PE':>8} {'kernel copy':>12} "
          f"{'PE x':>6} {'KC x':>6}")
    for grid in GRIDS:
        tr = measure_p2p_goodput(grid, "sendrecv", ONE_NODE)
        pe = measure_p2p_goodput(grid, "progression", ONE_NODE)
        kc = measure_p2p_goodput(grid, "kernel_copy", ONE_NODE)
        print(f"{grid:>7} {tr / GBps:>10.2f} {pe / GBps:>8.2f} {kc / GBps:>12.2f} "
              f"{pe / tr:>6.2f} {kc / tr:>6.2f}")

    print("\ninter-node (two GH200, two nodes)  [GB/s]")
    print(f"{'grid':>7} {'send/recv':>10} {'PE':>8} {'PE x':>6}")
    for grid in GRIDS:
        tr = measure_p2p_goodput(grid, "sendrecv", TWO_NODE_PAIR)
        pe = measure_p2p_goodput(grid, "progression", TWO_NODE_PAIR)
        print(f"{grid:>7} {tr / GBps:>10.2f} {pe / GBps:>8.2f} {pe / tr:>6.2f}")

    print("\npaper's claims: intra PE<=1.28x shrinking to ~1.0x; "
          "KC 2.34x -> 1.06x; inter 2.80x -> 1.17x")


if __name__ == "__main__":
    main()
