"""Traditional (non-partitioned) collectives — the paper's baselines.

These model what a production Open MPI delivers for device buffers today
and are what Figures 6/7/10/11 compare against:

* ``barrier`` — dissemination algorithm over 0-byte messages;
* ``bcast`` — binomial tree;
* ``allreduce`` — for device buffers, the *host-staged* path: D2H copy,
  ring reduce-scatter + allgather between host buffers with CPU
  reductions, then H2D copy.  This serialization (plus the application's
  preceding ``cudaStreamSynchronize``) is why the paper finds partitioned
  allreduce "multiple orders of magnitude" faster at the kernel+comm level;
* ``reduce`` / ``allgather`` — minimal tree/ring forms used by apps.

All are generator functions executed *in the calling rank's process*; every
rank of the communicator must call them (they communicate, they do not
consult global state).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.hw.memory import Buffer, MemSpace
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MpiOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mpi.comm import Communicator

#: Tag space reserved for collective traffic (separate from user tags).
_COLL_TAG = 1 << 20


def _tmp_host(comm: "Communicator", n: int, dtype) -> Buffer:
    return Buffer.alloc(n, dtype, MemSpace.PINNED, node=comm.rt.node)


def barrier(comm: "Communicator") -> Generator:
    """Dissemination barrier: ceil(log2 P) rounds of 0-byte exchanges."""
    rt = comm.rt
    size, rank = comm.size, comm.rank
    if size == 1:
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        return
    token = _tmp_host(comm, 1, np.int8)
    rbuf = _tmp_host(comm, 1, np.int8)
    rounds = math.ceil(math.log2(size))
    for k in range(rounds):
        dist = 1 << k
        dest = (rank + dist) % size
        src = (rank - dist) % size
        yield from comm.sendrecv(
            token, dest, rbuf, src, sendtag=_COLL_TAG + k, recvtag=_COLL_TAG + k
        )


def bcast(comm: "Communicator", buf: Buffer, root: int = 0) -> Generator:
    """Binomial-tree broadcast."""
    size = comm.size
    if not 0 <= root < size:
        raise MpiUsageError(f"bcast root {root} out of range")
    if size == 1:
        yield comm.rt.engine.timeout(comm.rt.params.mpi_call_overhead)
        return
    # Rotate so the root is virtual rank 0.
    vrank = (comm.rank - root) % size
    mask = 1
    # Receive phase: find our parent.
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) % size + root) % size
            yield from comm.recv(buf, parent, tag=_COLL_TAG + 16)
            break
        mask <<= 1
    # Send phase: forward to children below our lowest set bit.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            child = ((vrank + mask) % size + root) % size
            yield from comm.send(buf, child, tag=_COLL_TAG + 16)
        mask >>= 1


def _ring_allreduce_host(
    comm: "Communicator", work: np.ndarray, op: MpiOp, per_step_penalty: float = 0.0
) -> Generator:
    """In-place ring reduce-scatter + allgather on a host array.

    Charges CPU reduction time per step; communication goes through the
    normal p2p path (host buffers).  ``per_step_penalty`` adds the
    bounce-buffer chunking cost of the device-staged path.
    """
    rt = comm.rt
    size, rank = comm.size, comm.rank
    n = len(work)
    if n % size != 0:
        raise MpiUsageError(
            f"host ring allreduce requires count ({n}) divisible by size ({size})"
        )
    chunk = n // size
    wrap = Buffer(work, MemSpace.PINNED, node=rt.node)
    tmp = _tmp_host(comm, chunk, work.dtype)
    right = (rank + 1) % size
    left = (rank - 1) % size

    # Reduce-scatter: after step i, chunk (rank+1) mod P holds partials.
    for i in range(size - 1):
        send_idx = (rank - i) % size
        recv_idx = (rank - i - 1) % size
        if per_step_penalty:
            yield rt.engine.timeout(per_step_penalty)
        yield from comm.sendrecv(
            wrap.view(send_idx * chunk, chunk), right, tmp, left,
            sendtag=_COLL_TAG + 32 + i, recvtag=_COLL_TAG + 32 + i,
        )
        # CPU reduction of the received chunk.
        yield rt.engine.timeout(tmp.nbytes / rt.params.cpu_reduce_bw)
        op.reduce_into(work[recv_idx * chunk : (recv_idx + 1) * chunk], tmp.data)

    # Allgather: circulate completed chunks.
    for i in range(size - 1):
        send_idx = (rank + 1 - i) % size
        recv_idx = (rank - i) % size
        if per_step_penalty:
            yield rt.engine.timeout(per_step_penalty)
        yield from comm.sendrecv(
            wrap.view(send_idx * chunk, chunk), right,
            wrap.view(recv_idx * chunk, chunk), left,
            sendtag=_COLL_TAG + 64 + i, recvtag=_COLL_TAG + 64 + i,
        )


def allreduce(
    comm: "Communicator", sendbuf: Buffer, recvbuf: Buffer, op: MpiOp
) -> Generator:
    """MPI_Allreduce; host-staged when the buffers live in device memory."""
    rt = comm.rt
    if len(sendbuf.data) != len(recvbuf.data):
        raise MpiUsageError("allreduce: sendbuf/recvbuf length mismatch")
    if comm.size == 1:
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        recvbuf.copy_from(sendbuf)
        return
    if len(sendbuf.data) % comm.size != 0:
        # Ring chunking needs divisibility; small/odd counts (e.g. scalar
        # norms) take the reduce + bcast path instead.
        yield from reduce(comm, sendbuf, recvbuf, op, root=0)
        yield from bcast(comm, recvbuf, root=0)
        return

    device_buffers = not sendbuf.space.host_accessible or not recvbuf.space.host_accessible
    if device_buffers:
        # Stage to host (D2H), reduce on CPUs, stage back (H2D).  The
        # staging is *blocking and chunked* through a small bounce buffer
        # (per-chunk cudaMemcpy + synchronize), matching the production
        # CUDA-aware path the paper measures against: each ring step pays
        # ceil(step_bytes / bounce) * penalty on top of the wire time.
        host = _tmp_host(comm, len(sendbuf.data), sendbuf.data.dtype)
        bounce = rt.params.allreduce_bounce_bytes
        penalty = rt.params.allreduce_bounce_penalty
        n_chunks = math.ceil(sendbuf.nbytes / bounce)
        yield rt.engine.timeout(n_chunks * penalty)
        yield rt.fabric.dataplane.put(
            sendbuf, host, traffic_class="coll", name="ar_d2h"
        )
        step_bytes = sendbuf.nbytes // comm.size
        step_chunks = max(1, math.ceil(step_bytes / bounce))
        yield from _ring_allreduce_host(
            comm, host.data, op, per_step_penalty=step_chunks * penalty
        )
        yield rt.engine.timeout(n_chunks * penalty)
        yield rt.fabric.dataplane.put(
            host, recvbuf, traffic_class="coll", name="ar_h2d"
        )
    else:
        recvbuf.copy_from(sendbuf)
        yield from _ring_allreduce_host(comm, recvbuf.data, op)


def reduce(
    comm: "Communicator",
    sendbuf: Buffer,
    recvbuf: Optional[Buffer],
    op: MpiOp,
    root: int = 0,
) -> Generator:
    """Flat binomial reduce to ``root`` (host-staged for device buffers)."""
    rt = comm.rt
    size = comm.size
    vrank = (comm.rank - root) % size

    acc = _tmp_host(comm, len(sendbuf.data), sendbuf.data.dtype)
    if sendbuf.space.host_accessible:
        acc.data[:] = sendbuf.data
    else:
        yield rt.fabric.dataplane.put(
            sendbuf, acc, traffic_class="coll", name="red_d2h"
        )

    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm.send(acc, parent, tag=_COLL_TAG + 96)
            break
        partner = vrank | mask
        if partner < size:
            tmp = _tmp_host(comm, len(sendbuf.data), sendbuf.data.dtype)
            yield from comm.recv(tmp, ((partner + root) % size), tag=_COLL_TAG + 96)
            yield rt.engine.timeout(tmp.nbytes / rt.params.cpu_reduce_bw)
            op.reduce_into(acc.data, tmp.data)
        mask <<= 1

    if comm.rank == root:
        if recvbuf is None:
            raise MpiUsageError("reduce: root must supply recvbuf")
        if recvbuf.space.host_accessible:
            recvbuf.data[:] = acc.data
        else:
            yield rt.fabric.dataplane.put(
                acc, recvbuf, traffic_class="coll", name="red_h2d"
            )


def allgather(comm: "Communicator", sendbuf: Buffer, recvbuf: Buffer) -> Generator:
    """Ring allgather: recvbuf[rank*chunk : ...] slots, chunk = len(sendbuf)."""
    rt = comm.rt
    size, rank = comm.size, comm.rank
    chunk = len(sendbuf.data)
    if len(recvbuf.data) != chunk * size:
        raise MpiUsageError("allgather: recvbuf must hold size * len(sendbuf)")
    own = recvbuf.view(rank * chunk, chunk)
    if own.space == sendbuf.space and own.node == sendbuf.node:
        own.copy_from(sendbuf)
    else:
        yield rt.fabric.dataplane.put(
            sendbuf, own, traffic_class="coll", name="ag_local"
        )
    if size == 1:
        yield rt.engine.timeout(rt.params.mpi_call_overhead)
        return
    right, left = (rank + 1) % size, (rank - 1) % size
    for i in range(size - 1):
        send_idx = (rank - i) % size
        recv_idx = (rank - i - 1) % size
        yield from comm.sendrecv(
            recvbuf.view(send_idx * chunk, chunk), right,
            recvbuf.view(recv_idx * chunk, chunk), left,
            sendtag=_COLL_TAG + 128 + i, recvtag=_COLL_TAG + 128 + i,
        )
