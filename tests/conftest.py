"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cuda.device import Device
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.hw.topology import Fabric
from repro.mpi.world import World
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def fabric(engine) -> Fabric:
    return Fabric(engine, ONE_NODE)


@pytest.fixture
def gpu(fabric) -> Device:
    return Device(fabric, 0)


@pytest.fixture
def one_node_world() -> World:
    return World(ONE_NODE)


@pytest.fixture
def two_node_world() -> World:
    return World(PAPER_TESTBED)


def run_proc(engine: Engine, gen, name: str = "test"):
    """Spawn a generator process and run the engine until it finishes."""
    proc = engine.process(gen, name=name)
    return engine.run(proc)


def run_ranks(world: World, main, nprocs: int, *args):
    """Launch an MPI job in a world and return per-rank results."""
    return world.run(main, nprocs=nprocs, args=args)
