"""Static happens-before approximation for partitioned communication.

The dynamic sanitizer (``repro.san``) catches ``read-before-parrived``
and ``send-overwrite`` only on paths the recorded run actually takes.
This pass checks the *graph*: inside ``src/repro/partitioned/`` and
``src/repro/pcoll/``, every partition-buffer access must be ordered by
an arrival edge on **every** path, not just the ones a seed explores.

``hb-read-unordered``
    In a function that both waits for arrivals (``parrived`` /
    ``wait`` / ``wait_for``) and touches partition buffer storage
    (``...buf....data[...]`` subscripts, ``...buf....partition(...)``),
    an access whose CFG node is **not dominated** by any wait: some
    path reaches the access without ever passing an arrival edge.

``hb-send-overwrite``
    A write to partition buffer storage reachable from a ``pready``
    call along a path containing **no** wait: the transport may still
    be reading the partition when the write lands.

Both rules deliberately over-approximate (coarse exception edges, no
aliasing); a reviewed false positive is silenced with
``# repro: ignore[hb-read-unordered]`` on the access line, never by
disabling the rule.  Functions that only produce or only consume
(no wait + access pair, no pready + write pair) are out of scope —
ordering for those lives in their callers.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from repro.analyze.cfg import map_statements
from repro.analyze.model import FunctionInfo, Project, dotted_name
from repro.analyze.rules import Finding, Pass, Rule

FAMILY = "hb-static"

READ_UNORDERED = "hb-read-unordered"
SEND_OVERWRITE = "hb-send-overwrite"

RULES: Dict[str, Rule] = {
    READ_UNORDERED: Rule(
        READ_UNORDERED, FAMILY,
        "partition-buffer access not dominated by a parrived/wait edge — "
        "some path reads the partition before arrival",
    ),
    SEND_OVERWRITE: Rule(
        SEND_OVERWRITE, FAMILY,
        "partition-buffer write reachable from pready without an "
        "intervening wait — the transport may still be reading it",
    ),
}

#: Packages whose modules this family analyzes.
HB_PACKAGES = ("partitioned", "pcoll")

_WAIT_ATTRS = {"parrived", "wait", "wait_for"}


def _in_scope(path: str) -> bool:
    return bool(set(Path(path).parts) & set(HB_PACKAGES))


def _is_buf_chain(node: ast.AST) -> bool:
    dotted = dotted_name(node)
    if dotted is None:
        return False
    return any(
        part in ("buf", "buffer") or part.endswith("_buf")
        for part in dotted.split(".")
    )


def _classify(fi: FunctionInfo):
    """-> (wait stmt-nodes, pready stmt-nodes, reads, writes).

    Reads/writes are ``(cfg stmt-node, lineno, description)`` triples.
    """
    cfg = fi.cfg
    stmt_of = map_statements(fi.node)

    def node_of(expr: ast.AST):
        stmt = stmt_of.get(id(expr))
        return None if stmt is None else cfg.node_of_stmt.get(id(stmt))

    waits: Set[int] = set()
    preadys: List[Tuple[int, int]] = []
    reads: List[Tuple[int, int, str]] = []
    writes: List[Tuple[int, int, str]] = []

    for node in fi.owned():
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            nid = node_of(node)
            if nid is None:
                continue
            attr = node.func.attr
            if attr in _WAIT_ATTRS:
                waits.add(nid)
            elif "pready" in attr:
                preadys.append((nid, node.lineno))
            elif attr == "partition" and _is_buf_chain(node.func.value):
                reads.append((
                    nid, node.lineno,
                    f"{dotted_name(node.func) or 'partition'}(...)",
                ))
        elif isinstance(node, ast.Subscript) and _is_buf_chain(node.value):
            nid = node_of(node)
            if nid is None:
                continue
            desc = f"{dotted_name(node.value) or 'buffer'}[...]"
            if isinstance(node.ctx, ast.Store):
                writes.append((nid, node.lineno, desc))
            else:
                reads.append((nid, node.lineno, desc))
    return waits, preadys, reads, writes


def run(project: Project, enabled: Sequence[str]) -> List[Finding]:
    enabled_set = set(enabled)
    findings: List[Finding] = []
    for fi in project.functions:
        if not _in_scope(fi.path):
            continue
        waits, preadys, reads, writes = _classify(fi)

        if READ_UNORDERED in enabled_set and waits and (reads or writes):
            dom = fi.cfg.dominators()
            for nid, lineno, desc in reads + writes:
                if not (waits & dom.get(nid, set())):
                    findings.append(Finding(
                        READ_UNORDERED, fi.path, lineno,
                        f"{desc} is not dominated by a "
                        "parrived/wait call — a path reaches this access "
                        "with no arrival ordering",
                        fi.qualname,
                    ))

        if SEND_OVERWRITE in enabled_set and preadys and writes:
            blocked = frozenset(waits)
            flagged: Set[int] = set()
            for pnode, plineno in preadys:
                reach = fi.cfg.reachable_from(pnode, blocked=blocked)
                for nid, lineno, desc in writes:
                    if nid in reach and nid != pnode and lineno not in flagged:
                        flagged.add(lineno)
                        findings.append(Finding(
                            SEND_OVERWRITE, fi.path, lineno,
                            f"write to {desc} is reachable from the pready "
                            f"at line {plineno} with no intervening wait — "
                            "the transport may still be reading the partition",
                            fi.qualname,
                        ))
    return findings


PASS = Pass(family=FAMILY, rules=RULES, run=run)
