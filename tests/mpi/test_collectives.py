"""Traditional collectives: correctness + baseline cost structure."""

import numpy as np
import pytest

from repro.hw.params import ONE_NODE, PAPER_TESTBED
from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import MAX, MIN, PROD, SUM
from repro.mpi.world import World
from repro.units import us


def test_barrier_synchronizes():
    arrivals = []

    def main(ctx):
        yield ctx.engine.timeout(ctx.rank * 10 * us)  # staggered entry
        yield from ctx.comm.barrier()
        arrivals.append((ctx.rank, ctx.now))

    World(ONE_NODE).run(main, nprocs=4)
    times = [t for _r, t in arrivals]
    assert max(times) - min(times) < 5 * us  # everyone leaves together-ish
    assert min(times) >= 30 * us             # nobody leaves before the last entry


def test_barrier_single_rank():
    def main(ctx):
        yield from ctx.comm.barrier()
        return True

    assert World(ONE_NODE).run(main, nprocs=1) == [True]


@pytest.mark.parametrize("root", [0, 1, 3])
def test_bcast_from_any_root(root):
    def main(ctx):
        buf = ctx.gpu.alloc_pinned(32, fill=float(ctx.rank * 100))
        if ctx.rank == root:
            buf.data[:] = 77.0
        yield from ctx.comm.bcast(buf, root=root)
        assert np.all(buf.data == 77.0)

    World(ONE_NODE).run(main, nprocs=4)


def test_bcast_bad_root():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.bcast(ctx.gpu.alloc_pinned(4), root=9)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


@pytest.mark.parametrize("op,expected", [
    (SUM, 1.0 + 2.0 + 3.0 + 4.0),
    (PROD, 24.0),
    (MAX, 4.0),
    (MIN, 1.0),
])
def test_allreduce_ops_host(op, expected):
    def main(ctx):
        sbuf = ctx.gpu.alloc_pinned(128, fill=float(ctx.rank + 1))
        rbuf = ctx.gpu.alloc_pinned(128)
        yield from ctx.comm.allreduce(sbuf, rbuf, op)
        assert np.all(rbuf.data == expected)

    World(ONE_NODE).run(main, nprocs=4)


def test_allreduce_device_buffers_correct():
    def main(ctx):
        sbuf = ctx.gpu.alloc(4096, fill=float(ctx.rank + 1))
        rbuf = ctx.gpu.alloc(4096)
        yield from ctx.comm.allreduce(sbuf, rbuf, SUM)
        assert np.all(rbuf.data == 10.0)
        return ctx.now

    World(ONE_NODE).run(main, nprocs=4)


def test_allreduce_device_pays_bounce_penalty():
    """Device-buffer allreduce must cost far more than host-buffer."""

    def main(ctx, space):
        n = 1 << 17
        if space == "device":
            sbuf, rbuf = ctx.gpu.alloc(n, fill=1.0), ctx.gpu.alloc(n)
        else:
            sbuf, rbuf = ctx.gpu.alloc_pinned(n, fill=1.0), ctx.gpu.alloc_pinned(n)
        t0 = ctx.now
        yield from ctx.comm.allreduce(sbuf, rbuf, SUM)
        return ctx.now - t0

    t_dev = max(World(ONE_NODE).run(main, nprocs=4, args=("device",)))
    t_host = max(World(ONE_NODE).run(main, nprocs=4, args=("host",)))
    assert t_dev > 3 * t_host


def test_allreduce_mismatched_sizes():
    def main(ctx):
        with pytest.raises(MpiUsageError):
            yield from ctx.comm.allreduce(ctx.gpu.alloc(8), ctx.gpu.alloc(16), SUM)
        return True

    assert all(World(ONE_NODE).run(main, nprocs=2))


def test_allreduce_single_rank_copies():
    def main(ctx):
        sbuf = ctx.gpu.alloc(16, fill=3.0)
        rbuf = ctx.gpu.alloc(16)
        yield from ctx.comm.allreduce(sbuf, rbuf, SUM)
        assert np.all(rbuf.data == 3.0)

    World(ONE_NODE).run(main, nprocs=1)


@pytest.mark.parametrize("root", [0, 2])
def test_reduce_to_root(root):
    def main(ctx):
        sbuf = ctx.gpu.alloc_pinned(64, fill=float(ctx.rank + 1))
        rbuf = ctx.gpu.alloc_pinned(64) if ctx.rank == root else None
        yield from ctx.comm.reduce(sbuf, rbuf, SUM, root=root)
        if ctx.rank == root:
            assert np.all(rbuf.data == 10.0)

    World(ONE_NODE).run(main, nprocs=4)


def test_allgather():
    def main(ctx):
        chunk = 16
        sbuf = ctx.gpu.alloc_pinned(chunk, fill=float(ctx.rank))
        rbuf = ctx.gpu.alloc_pinned(chunk * ctx.size)
        yield from ctx.comm.allgather(sbuf, rbuf)
        for r in range(ctx.size):
            assert np.all(rbuf.data[r * chunk:(r + 1) * chunk] == float(r))

    World(ONE_NODE).run(main, nprocs=4)


def test_allreduce_eight_ranks_two_nodes():
    def main(ctx):
        sbuf = ctx.gpu.alloc(1024, fill=float(ctx.rank + 1))
        rbuf = ctx.gpu.alloc(1024)
        yield from ctx.comm.allreduce(sbuf, rbuf, SUM)
        assert np.all(rbuf.data == sum(range(1, 9)))

    World(PAPER_TESTBED).run(main, nprocs=8)
