"""ShardedExecutor: shard blocks on worker processes, one pipe trip per window.

The coordinator runs *exactly* the sequential driver's loop — same
``nxt`` computation, same driver-side :class:`WindowQueue` batches, same
ascending-shard digest — but each window's shard work is fanned out to
``N`` forked workers holding contiguous shard blocks.  Because the
batches (and therefore each shard engine's injection schedule) are
computed centrally, the per-shard step streams are bit-identical to the
sequential run for every worker count, including ``--shards 1``.

Protocol (one round trip per window, messages are plain tuples):

====================================  =======================================
coordinator -> worker                 worker -> coordinator
====================================  =======================================
(build happens at fork)               ``("ready", {sid: peek})``
``("run", horizon, {sid: batch})``    ``("out", [ShardMessage], {sid: peek})``
``("finish",)``                       ``("result", [shard dicts])``
``("stop",)``                         (exit)
(any request, on worker crash)        ``("error", traceback_text)``
====================================  =======================================

Worker engine statistics never touch the coordinator's module
:data:`~repro.sim.engine.STATS` implicitly; each shard's counter
snapshot comes back in its result dict and is absorbed in ascending
shard-id order, so the aggregate stream is reproducible.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.shard.mailbox import WindowQueue
from repro.shard.message import MessageDigest, ShardMessage
from repro.shard.shard import Shard
from repro.sim.engine import STATS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shard.cluster import ClusterJob, ClusterResult


def _shard_blocks(n_shards: int, workers: int) -> List[List[int]]:
    """Contiguous shard-id blocks, sizes differing by at most one."""
    base, extra = divmod(n_shards, workers)
    blocks, start = [], 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        blocks.append(list(range(start, start + size)))
        start += size
    return blocks


def _worker_main(conn, job: "ClusterJob", sids: List[int]) -> None:
    """Worker loop: build the shard block, then serve window requests."""
    try:
        shards: Dict[int, Shard] = {
            sid: Shard(
                job.spec, sid, job.build, job.cfg,
                wire=job.wire, collect_steps=job.collect_steps,
            )
            for sid in sids
        }
        conn.send(("ready", {sid: shards[sid].next_time() for sid in sids}))
        while True:
            req = conn.recv()
            kind = req[0]
            if kind == "run":
                _, horizon, batches = req
                outs: List[ShardMessage] = []
                for sid in sids:  # ascending: matches the sequential driver
                    outs.extend(
                        shards[sid].step_window(horizon, batches.get(sid, []))
                    )
                conn.send(
                    ("out", outs, {sid: shards[sid].next_time() for sid in sids})
                )
            elif kind == "finish":
                conn.send(("result", [
                    {
                        "sid": sid,
                        "done": s.done,
                        "results": s.results() if s.done else None,
                        "unmatched": s.mailbox.unmatched(),
                        "events_popped": s.engine.events_popped,
                        "snapshot": s.stats_snapshot(),
                        "step_digest": s.step_digest(),
                        "t_end": s.busy_time(),
                        "bytes_by_class": s.bridge.bytes_by_class,
                        "graph_launches": s.graph_launches(),
                    }
                    for sid, s in sorted(shards.items())
                ]))
            elif kind == "stop":
                return
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown request {kind!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    finally:
        conn.close()


class ShardedExecutor:
    """Drive a :class:`~repro.shard.cluster.ClusterJob` over worker processes."""

    def __init__(self, job: "ClusterJob", workers: int) -> None:
        from repro.shard.cluster import ClusterError

        if workers < 1:
            raise ClusterError(f"workers must be >= 1, got {workers}")
        self.job = job
        # More workers than shards would fork idle processes.
        self.workers = min(workers, job.spec.n_nodes)

    def run(self) -> "ClusterResult":
        from repro.shard.cluster import ClusterError, ClusterResult

        job = self.job
        n = job.spec.n_nodes
        # fork: workers inherit the job (spec, workload build fn, cfg)
        # without a pickle round-trip; only window traffic crosses pipes.
        ctx = multiprocessing.get_context("fork")
        blocks = _shard_blocks(n, self.workers)
        conns: List[Tuple] = []   # (parent_conn, sids)
        procs = []
        try:
            for sids in blocks:
                parent, child = ctx.Pipe()
                p = ctx.Process(
                    target=_worker_main, args=(child, job, sids), daemon=True
                )
                p.start()
                child.close()
                conns.append((parent, sids))
                procs.append(p)

            peeks: Dict[int, float] = {}
            for parent, _sids in conns:
                peeks.update(self._expect(parent, "ready")[1])

            queues = [WindowQueue() for _ in range(n)]
            digest = MessageDigest()
            windows = 0
            lookahead = job.lookahead
            while True:
                nxt = min(
                    min(peeks.values()),
                    min(q.next_deliver() for q in queues),
                )
                if nxt == float("inf"):
                    break
                horizon = nxt + lookahead
                batches = [q.take(horizon) for q in queues]
                # Same cross-queue merge order as the sequential driver.
                for msg in sorted(
                    (m for batch in batches for m in batch),
                    key=lambda m: m.merge_key,
                ):
                    digest.update(msg)
                for parent, sids in conns:
                    parent.send(("run", horizon, {
                        sid: batches[sid] for sid in sids if batches[sid]
                    }))
                for parent, _sids in conns:
                    _, outs, pk = self._expect(parent, "out")
                    for msg in outs:
                        queues[msg.dst_shard].post(msg)
                    peeks.update(pk)
                windows += 1

            for parent, _sids in conns:
                parent.send(("finish",))
            shard_info: Dict[int, dict] = {}
            for parent, _sids in conns:
                for info in self._expect(parent, "result")[1]:
                    shard_info[info["sid"]] = info
            for parent, _sids in conns:
                parent.send(("stop",))
        finally:
            for parent, _sids in conns:
                parent.close()
            for p in procs:
                p.join(timeout=10)
                if p.is_alive():  # pragma: no cover - hung worker
                    p.terminate()
                    p.join()

        stuck = [sid for sid, info in sorted(shard_info.items()) if not info["done"]]
        if stuck:
            detail = "; ".join(
                f"shard {sid}: {info['unmatched'][0]} unread arrival(s), "
                f"{info['unmatched'][1]} parked recv(s)"
                for sid, info in sorted(shard_info.items())
                if info["unmatched"] != (0, 0)
            )
            raise ClusterError(
                f"windows drained but shard(s) {stuck} never finished "
                f"(cross-shard deadlock?); {detail or 'no parked recvs'}"
            )

        # Deterministic stats merge: ascending shard id (satellite #1).
        for sid in sorted(shard_info):
            STATS.absorb(shard_info[sid]["snapshot"])

        bytes_by_class: Dict[str, int] = {}
        for sid in sorted(shard_info):
            for cls, nb in shard_info[sid]["bytes_by_class"].items():
                bytes_by_class[cls] = bytes_by_class.get(cls, 0) + nb
        per_shard = [shard_info[sid]["events_popped"] for sid in sorted(shard_info)]
        step_digests = None
        if job.collect_steps:
            step_digests = {
                sid: shard_info[sid]["step_digest"] for sid in sorted(shard_info)
            }
        return ClusterResult(
            mode="mp",
            machine=job.spec.name,
            workload=job.workload_name,
            shards=n,
            workers=len(conns),
            windows=windows,
            messages=digest.count,
            msg_digest=digest.hexdigest(),
            events_popped=sum(per_shard),
            per_shard_popped=per_shard,
            step_digests=step_digests,
            results={sid: shard_info[sid]["results"] for sid in sorted(shard_info)},
            t_end=max(shard_info[sid]["t_end"] for sid in shard_info),
            bytes_by_class=bytes_by_class,
            events_graphed=sum(
                shard_info[sid]["snapshot"].get("events_graphed", 0)
                for sid in sorted(shard_info)
            ),
            graph_launches=sum(
                shard_info[sid].get("graph_launches", 0)
                for sid in sorted(shard_info)
            ),
        )

    @staticmethod
    def _expect(parent, kind: str):
        from repro.shard.cluster import ClusterError

        try:
            msg = parent.recv()
        except EOFError as exc:
            raise ClusterError("worker died without reporting an error") from exc
        if msg[0] == "error":
            raise ClusterError(f"worker failed:\n{msg[1]}")
        if msg[0] != kind:  # pragma: no cover - protocol bug
            raise ClusterError(f"expected {kind!r} reply, got {msg[0]!r}")
        return msg
