"""``python -m repro san`` — sanitize a script, or list the checks.

::

    python -m repro san examples/quickstart.py      # run under the sanitizer
    python -m repro san quickstart                  # shorthand for the above
    python -m repro san --list-checks               # dynamic + static catalogue
    python -m repro san --trace examples/quickstart.py   # also dump the trace

Exit status: 0 when the run produced zero findings, 1 otherwise (2 for a
crashed target).  The target runs with ``__name__ == "__main__"`` exactly
as if invoked directly; every ``World``/``Engine`` it creates is recorded.
"""

from __future__ import annotations

import argparse
import runpy
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.san.checks import DYNAMIC_CHECKS
from repro.san.report import Report
from repro.san.sanitizer import Sanitizer


def list_checks() -> str:
    # One registry for every static rule (repro.analyze.registry): this
    # listing, `repro analyze --list` and `lint_repro.py --list` all
    # enumerate the same table.
    from repro.analyze.registry import all_rules

    lines = ["dynamic checks (python -m repro san <script>):"]
    for info, _fn in DYNAMIC_CHECKS.values():
        lines.append(f"  {info.id:22s} {info.summary}")
    lines.append("static rules (python -m repro analyze):")
    for rule in all_rules().values():
        lines.append(f"  {rule.id:22s} [{rule.family}] {rule.summary}")
    return "\n".join(lines)


def resolve_target(target: str) -> Path:
    """A script path, or a bare example name (``quickstart``)."""
    path = Path(target)
    if path.is_file():
        return path
    candidate = Path("examples") / f"{target}.py"
    if candidate.is_file():
        return candidate
    raise FileNotFoundError(
        f"no such script: {target!r} (tried {path} and {candidate})"
    )


def sanitize_script(
    path: Path, checks: Optional[Sequence[str]] = None
) -> Report:
    """Execute ``path`` as ``__main__`` inside a sanitizer window."""
    with Sanitizer(checks=checks) as san:
        runpy.run_path(str(path), run_name="__main__")
    assert san.report is not None
    return san.report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro san",
        description="Run a script under the partitioned-communication sanitizer.",
    )
    parser.add_argument("target", nargs="?", help="script path or example name")
    parser.add_argument(
        "--list-checks", action="store_true",
        help="list every dynamic and static check, then exit",
    )
    parser.add_argument(
        "--check", action="append", metavar="ID", dest="checks",
        help="run only this check (repeatable; default: all)",
    )
    parser.add_argument(
        "--trace", action="store_true", help="dump the recorded event trace"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        print(list_checks())
        return 0
    if args.target is None:
        parser.error("a target script is required (or --list-checks)")
    if args.checks:
        unknown = sorted(set(args.checks) - set(DYNAMIC_CHECKS))
        if unknown:
            print(
                f"san: unknown check id(s): {', '.join(unknown)} "
                "(see --list-checks)", file=sys.stderr,
            )
            return 2

    try:
        path = resolve_target(args.target)
    except FileNotFoundError as exc:
        print(f"san: {exc}", file=sys.stderr)
        return 2
    try:
        report = sanitize_script(path, checks=args.checks)
    except Exception as exc:  # noqa: BLE001 - CLI surface
        print(f"san: target crashed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.trace:
        for ev in report.trace:
            print(ev.render())
    print(report.render())
    return 0 if report.ok else 1
