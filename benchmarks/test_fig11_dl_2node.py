"""Fig 11: DL kernel (BCE + gradient allreduce) on eight GH200 (2 nodes).

Same ordering claims as Fig 10 at twice the scale; additionally the
two-node step times exceed the one-node ones (the ring crosses IB).
"""

from conftest import run_exhibit

from repro.bench import figures

GRIDS = (256, 1024, 4096)


def test_fig11_dl_2node(benchmark):
    series = run_exhibit(benchmark, figures.fig11, grids=GRIDS)

    for row in series.rows:
        assert row["traditional_us"] > row["partitioned_us"] > row["nccl_us"], (
            f"ordering must hold at grid {row['grid']}"
        )

    one_node = figures.fig10(grids=(GRIDS[1],))
    two_node_row = series.rows[1]
    assert two_node_row["nccl_us"] > one_node.rows[0]["nccl_us"]
    assert two_node_row["partitioned_us"] > one_node.rows[0]["partitioned_us"]
