"""Binomial-tree broadcast schedule (all-NOP — no compute component).

The paper notes (Section II-B3) that a partitioned Bcast with a
binary-tree algorithm "will consist of only NOPs"; collectives without a
reduction never pay the in-collective kernel-launch + stream-sync cost
that separates the partitioned allreduce from NCCL (Section VI-B).

Round structure (virtual rank v = (rank - root) mod P, R = ceil(log2 P)
rounds): v receives from its parent in round ``j = position of v's
highest set bit``; it forwards to child ``v + 2^k`` in every round
``k > j`` where that child exists.  Every user partition pipelines through
the tree independently.
"""

from __future__ import annotations

import math

from repro.mpi.errors import MpiUsageError
from repro.mpi.ops import NOP
from repro.pcoll.schedule import Schedule, Step


def binomial_bcast_schedule(rank: int, n_ranks: int, root: int = 0) -> Schedule:
    """Build rank ``rank``'s binomial broadcast schedule."""
    if n_ranks < 1:
        raise MpiUsageError("need at least 1 rank")
    if not 0 <= rank < n_ranks or not 0 <= root < n_ranks:
        raise MpiUsageError("rank/root out of range")
    v = (rank - root) % n_ranks
    rounds = max(1, math.ceil(math.log2(n_ranks))) if n_ranks > 1 else 0

    recv_round = -1  # root never receives
    if v != 0:
        recv_round = v.bit_length() - 1  # highest set bit position

    steps = []
    for k in range(rounds):
        incoming = ()
        outgoing = ()
        if k == recv_round:
            parent_v = v & ~(1 << k)
            incoming = ((parent_v + root) % n_ranks,)
        if k > recv_round and v < (1 << k):  # holders double each round
            child_v = v + (1 << k)
            if child_v < n_ranks:
                outgoing = ((child_v + root) % n_ranks,)
        steps.append(Step(incoming, 0, NOP, outgoing, 0))
    return Schedule(rank, n_ranks, n_chunks=1, steps=tuple(steps), name="binomial_bcast",
                    requires_local_contribution=(v == 0))


def binomial_reduce_schedule(rank: int, n_ranks: int, op, root: int = 0) -> Schedule:
    """Binomial-tree reduce to ``root``: the bcast tree run backwards.

    Virtual rank v sends its (partially reduced) contribution to
    ``v - 2^k`` in round k, where k is v's lowest set bit; before that it
    receives-and-reduces from child ``v + 2^j`` in every round ``j < k``
    where that child exists.  Rank 0 (the root) only receives.
    """
    if n_ranks < 1:
        raise MpiUsageError("need at least 1 rank")
    if not 0 <= rank < n_ranks or not 0 <= root < n_ranks:
        raise MpiUsageError("rank/root out of range")
    v = (rank - root) % n_ranks
    rounds = max(1, math.ceil(math.log2(n_ranks))) if n_ranks > 1 else 0
    send_round = rounds  # root never sends
    if v != 0:
        send_round = (v & -v).bit_length() - 1  # lowest set bit

    steps = []
    for k in range(rounds):
        incoming = ()
        outgoing = ()
        if k < send_round:
            child_v = v + (1 << k)
            if child_v < n_ranks:
                incoming = ((child_v + root) % n_ranks,)
        elif k == send_round:
            parent_v = v & ~(1 << k)
            outgoing = ((parent_v + root) % n_ranks,)
        steps.append(Step(incoming, 0, op if incoming else NOP, outgoing, 0))
    return Schedule(rank, n_ranks, n_chunks=1, steps=tuple(steps), name="binomial_reduce")


def flat_reduce_schedule(rank: int, n_ranks: int, op, root: int = 0) -> Schedule:
    """Single-step linear reduce: the root's one step has *all* other
    ranks as incoming neighbours — exercising Algorithm 2's multi-
    neighbour arrival loop in one step."""
    if n_ranks < 1:
        raise MpiUsageError("need at least 1 rank")
    if not 0 <= rank < n_ranks or not 0 <= root < n_ranks:
        raise MpiUsageError("rank/root out of range")
    if rank == root:
        others = tuple(r for r in range(n_ranks) if r != root)
        steps = (Step(others, 0, op, (), 0),) if others else ()
    else:
        steps = (Step((), 0, NOP, (root,), 0),)
    return Schedule(rank, n_ranks, n_chunks=1, steps=steps, name="flat_reduce")


def verify_bcast_coverage(n_ranks: int, root: int = 0) -> bool:
    """Static check: the forest of sends reaches every rank exactly once."""
    schedules = [binomial_bcast_schedule(r, n_ranks, root) for r in range(n_ranks)]
    has_data = {root}
    recv_count = {r: 0 for r in range(n_ranks)}
    rounds = len(schedules[0].steps)
    for k in range(rounds):
        snapshot = set(has_data)
        for r in range(n_ranks):
            step = schedules[r].steps[k]
            for dst in step.outgoing:
                if r not in snapshot:
                    return False  # sending data it does not have yet
                # The receiver must expect it this round.
                if r not in schedules[dst].steps[k].incoming:
                    return False
                has_data.add(dst)
                recv_count[dst] += 1
    return has_data == set(range(n_ranks)) and all(
        recv_count[r] == (0 if r == root else 1) for r in range(n_ranks)
    )
