"""Stream semantics standalone: drain, errors, interleaving."""

import pytest

from repro.cuda.device import Device
from repro.cuda.kernel import UniformKernel
from repro.cuda.timing import WorkSpec
from repro.units import us

WORK = WorkSpec.vector_add()


def test_idle_initially(gpu):
    assert gpu.default_stream.idle


def test_not_idle_with_queued_work(engine, gpu):
    gpu.launch(UniformKernel(256, 1024, WORK))
    assert not gpu.default_stream.idle
    engine.run()
    assert gpu.default_stream.idle


def test_drained_fires_after_all_ops(engine, gpu):
    for _ in range(3):
        gpu.launch(UniformKernel(256, 1024, WORK))
    times = []

    def waiter():
        yield gpu.default_stream.drained()
        times.append(engine.now)

    engine.process(waiter())
    engine.run()
    one = gpu.cost.kernel_exec_time(256, 1024, WORK)
    assert times[0] == pytest.approx(3 * one)


def test_drained_immediate_when_idle(engine, gpu):
    def waiter():
        t0 = engine.now
        yield gpu.default_stream.drained()
        return engine.now - t0

    assert engine.run(engine.process(waiter())) == 0.0


def test_failing_op_fails_waiter_not_engine(engine, gpu):
    def boom():
        yield engine.timeout(1 * us)
        raise ValueError("kernel fault")

    done = gpu.default_stream.enqueue(boom, label="bad")

    def host():
        with pytest.raises(ValueError, match="kernel fault"):
            yield done
        return "survived"

    assert engine.run(engine.process(host())) == "survived"


def test_stream_continues_after_failed_op(engine, gpu):
    def boom():
        yield engine.timeout(1 * us)
        raise ValueError("x")

    bad = gpu.default_stream.enqueue(boom, label="bad")
    bad.add_callback(lambda ev: None)  # observed, so no engine crash
    ok = gpu.launch(UniformKernel(1, 64, WORK))
    engine.run()
    assert ok.triggered and ok.ok


def test_ops_across_streams_do_not_block_each_other(engine, gpu):
    s2 = gpu.new_stream()

    def slow():
        yield engine.timeout(1000 * us)

    stuck = gpu.default_stream.enqueue(slow, label="slow")
    quick = gpu.launch(UniformKernel(1, 64, WORK), stream=s2)

    def host():
        yield quick
        return engine.now

    t = engine.run(engine.process(host()))
    assert t < 10 * us
    assert not stuck.triggered
