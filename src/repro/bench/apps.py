"""Workload runners for the application exhibits (Figs 8-11)."""

from __future__ import annotations

from typing import Dict, List

from repro.apps.dl import DlConfig, run_dl
from repro.apps.jacobi import JacobiConfig, run_jacobi
from repro.hw.params import ONE_NODE, PAPER_TESTBED, TestbedConfig
from repro.workload.runner import run_ranks


def _jacobi_main(ctx, cfg: JacobiConfig):
    return (yield from run_jacobi(ctx, cfg))


def measure_jacobi_gflops(
    multiplier: int,
    variant: str,
    config: TestbedConfig,
    nprocs: int,
    base_tile: int = 16,
    iters: int = 150,
    copy_mode: str = "pe",
) -> float:
    """Aggregate GFLOP/s (slowest rank's view) for one Jacobi config."""
    cfg = JacobiConfig(
        multiplier=multiplier, base_tile=base_tile, iters=iters,
        variant=variant, copy_mode=copy_mode,
    )
    results = run_ranks(config, _jacobi_main, nprocs=nprocs, args=(cfg,)).results
    return min(r.gflops for r in results)


def _dl_main(ctx, cfg: DlConfig):
    return (yield from run_dl(ctx, cfg))


def measure_dl_step_time(
    grid: int,
    variant: str,
    config: TestbedConfig,
    nprocs: int,
    steps: int = 3,
    partitions: int = 8,
) -> float:
    """Per-training-step time (seconds) incl. Start/Pbuf_prepare."""
    cfg = DlConfig(grid=grid, block=1024, steps=steps, variant=variant, partitions=partitions)
    results = run_ranks(config, _dl_main, nprocs=nprocs, args=(cfg,)).results
    return max(r.time for r in results) / steps
