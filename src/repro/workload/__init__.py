"""repro.workload — one Workload contract for every driver.

A :class:`~repro.workload.base.Workload` declares what it needs (machine,
path policy, parameters) and emits a typed
:class:`~repro.workload.base.WorkloadResult` (series + SHA-256 digests +
run counters).  The registry holds every built-in workload — the paper
exhibits (fig2–fig11, table1), the bench micro-workloads (pingpong,
p2p-point, striping, jacobi, dl), the cluster workloads (halo,
allreduce-node) — loaded lazily on first :func:`get`/:func:`names`
lookup; ``replay:<schedule.jsonl>`` resolves any trace-replay schedule
(:mod:`repro.workload.replay`).

``python -m repro sweep`` runs (workload × machine × policy) grids over
this registry with a content-addressed result cache
(:mod:`repro.workload.sweep`).
"""

from repro.workload.base import (
    ExecOutcome,
    POLICY_NAMES,
    Workload,
    WorkloadError,
    WorkloadResult,
    canonical_json,
    series_digest,
    series_from_dict,
    series_to_dict,
    sha256_hex,
)
from repro.workload.registry import get, names, register, resolve_spec
from repro.workload.runner import RankRun, run_ranks

__all__ = [
    "ExecOutcome",
    "POLICY_NAMES",
    "RankRun",
    "Workload",
    "WorkloadError",
    "WorkloadResult",
    "canonical_json",
    "get",
    "names",
    "register",
    "resolve_spec",
    "run_ranks",
    "series_digest",
    "series_from_dict",
    "series_to_dict",
    "sha256_hex",
]
