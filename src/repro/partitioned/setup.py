"""The ``setup_t`` wire objects of the partitioned handshake.

Paper Section IV-A1/2: the sender packs matching information (communicator,
ranks, tag), geometry (partitions, element counts), and its worker address
into a ``setup_t`` sent non-blockingly at ``MPI_Psend_init`` time.  The
receiver, inside its first ``MPIX_Pbuf_prepare``, registers its buffers and
replies with a ``setup_t`` response carrying the remote keys and address —
everything the sender needs for RMA puts.

``arrived_sink`` stands in for the physical effect of the chained
completion-flag put: the receiver observing a 1 in its pinned flag array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Tuple

from repro.ucx.context import WorkerAddress
from repro.ucx.memreg import PackedRkey

#: Matching key: (comm_id, sender comm-rank, receiver comm-rank, tag).
ChannelKey = Tuple[int, int, int, int]

#: Wire size of a setup packet (small control message).
SETUP_BYTES = 192


@dataclass(frozen=True)
class SetupT:
    """Sender -> receiver: channel parameters (sent at Psend_init)."""

    key: ChannelKey
    partitions: int
    elems_per_partition: int
    itemsize: int
    worker_addr: WorkerAddress

    @property
    def partition_bytes(self) -> int:
        return self.elems_per_partition * self.itemsize


@dataclass(frozen=True)
class SetupResp:
    """Receiver -> sender: rkeys + address (sent from first Pbuf_prepare)."""

    key: ChannelKey
    rkey_data: PackedRkey
    rkey_flags: PackedRkey
    worker_addr: WorkerAddress
    partitions: int
    # In-process stand-in for the receiver polling its arrived-flag memory:
    # invoked when the chained flag put lands (index = transport partition).
    arrived_sink: Callable[[int], None] = field(repr=False, compare=False, default=None)


@dataclass(frozen=True)
class ReadyToReceive:
    """Receiver -> sender: buffer re-armed for a new epoch (later epochs)."""

    key: ChannelKey
    epoch: int
