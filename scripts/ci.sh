#!/usr/bin/env bash
# Tier-1 gate: tests + benchmark smoke + repo-invariant lint + (when
# available) ruff.  Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q -m "not smoke"

echo "== benchmark smoke (one small-grid point per paper figure) =="
PYTHONPATH=src python -m pytest -x -q -m smoke

echo "== bench smoke (event-loop traffic vs recorded ceiling) =="
PYTHONPATH=src python -m repro bench \
    --against BENCH_pr5.json --out /tmp/repro_bench_smoke.json

echo "== profile smoke (Chrome trace_event export) =="
PYTHONPATH=src python -m repro profile examples/pingpong_partitioned.py \
    --chrome /tmp/repro_trace.json
PYTHONPATH=src python - <<'EOF'
import json
from repro.obs.chrome import validate_trace
obj = json.load(open("/tmp/repro_trace.json"))
validate_trace(obj)
assert len(obj["traceEvents"]) > 100, "suspiciously small trace"
print(f"profile smoke: {len(obj['traceEvents'])} valid trace events")
EOF

echo "== repo-invariant lint (scripts/lint_repro.py) =="
python scripts/lint_repro.py src/repro

echo "== static analysis (python -m repro analyze) =="
# Fails on any finding that is neither inline-suppressed nor in
# analyze-baseline.json; also exports SARIF for CI annotation upload.
PYTHONPATH=src python -m repro analyze --sarif /tmp/repro_analyze.sarif
PYTHONPATH=src python - <<'EOF'
import json
from repro.analyze.sarif import validate_sarif
validate_sarif(json.load(open("/tmp/repro_analyze.sarif")))
print("analyze smoke: SARIF export valid")
EOF

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src scripts tests examples
else
    echo "== ruff not installed; skipping (config lives in pyproject.toml) =="
fi

echo "CI OK"
