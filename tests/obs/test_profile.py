"""Utilization and critical-path analysis: unit cases plus a full
partitioned-send workload cross-checked against the fabric telemetry."""

import numpy as np
import pytest

from repro.bench.telemetry import FabricSnapshot, snapshot
from repro.cuda.kernel import BlockKernel
from repro.cuda.timing import WorkSpec
from repro.hw.params import ONE_NODE
from repro.mpi.world import World
from repro.obs import bus as obs_bus
from repro.obs.bus import SPAN, ObsEvent
from repro.obs.profile import (
    Collector,
    critical_path,
    link_kind_totals,
    render_critical_path,
    render_utilization,
    utilization,
)
from repro.partitioned import device as pdev
from repro.partitioned.prequest import CopyMode


def _span(name, cat, t0, t1, seq, actor=None, **payload):
    return ObsEvent(SPAN, cat, name, actor, t0, t1, seq,
                    tuple(sorted(payload.items())))


# -- utilization: unit cases -------------------------------------------------

def test_overlapping_intervals_merge():
    events = [
        _span("nvl0->1", "link", 0.0, 2.0, 1, nbytes=10, kind="nvlink"),
        _span("nvl0->1", "link", 1.0, 3.0, 2, nbytes=10, kind="nvlink"),
        _span("nvl0->1", "link", 5.0, 6.0, 3, nbytes=10, kind="nvlink"),
    ]
    rep = utilization(events)
    track = rep["nvl0->1"]
    assert track.busy == pytest.approx(4.0)  # [0,3] merged + [5,6]
    assert track.spans == 3 and track.bytes == 30
    assert track.kind == "nvlink"
    assert rep.window == pytest.approx(6.0)


def test_kernel_spans_roll_up_per_gpu_sm():
    events = [
        _span("vadd", "kernel", 0.0, 1.0, 1, actor=("gpu", "gpu0")),
        _span("vadd", "kernel", 2.0, 3.0, 2, actor=("gpu", "gpu0")),
        _span("vadd", "kernel", 0.0, 4.0, 3, actor=("gpu", "gpu1")),
    ]
    rep = utilization(events)
    assert rep["gpu0.sm"].busy == pytest.approx(2.0)
    assert rep["gpu1.sm"].busy == pytest.approx(4.0)
    assert {t.key for t in rep.group("sm")} == {"gpu0.sm", "gpu1.sm"}


def test_non_occupancy_categories_ignored():
    events = [
        _span("wait", "resource", 0.0, 5.0, 1),
        _span("nvl0->1", "link", 0.0, 1.0, 2, kind="nvlink"),
    ]
    rep = utilization(events)
    assert set(rep.tracks) == {"nvl0->1"}


def test_render_handles_empty_stream():
    assert "no occupancy spans" in render_utilization(utilization([]))


# -- critical path: unit cases -----------------------------------------------

def test_chain_walks_back_through_enabling_spans():
    a = _span("a", "kernel", 0.0, 1.0, 1, actor=("gpu", "g"))
    b = _span("b", "link", 1.0, 2.0, 2)
    c = _span("c", "pe", 2.0, 3.0, 3, actor=("pe", 0))
    parallel = _span("p", "stream", 0.0, 0.5, 4, actor=("s",))
    chain = critical_path([parallel, c, a, b])
    assert [e.name for e in chain] == ["a", "b", "c"]


def test_chain_is_deterministic_under_ties():
    evs = [
        _span("x", "kernel", 0.0, 1.0, 1, actor=("gpu", "g")),
        _span("y", "kernel", 0.0, 1.0, 2, actor=("gpu", "g")),
        _span("z", "link", 1.0, 2.0, 3),
    ]
    first = [e.seq for e in critical_path(evs)]
    second = [e.seq for e in critical_path(list(evs))]
    assert first == second
    assert first[-1] == 3


def test_empty_stream_yields_empty_chain():
    assert critical_path([]) == []
    assert "no spans" in render_critical_path([])


# -- full workload -----------------------------------------------------------

def _profiled_send(mode=CopyMode.PROGRESSION_ENGINE, n=4096, partitions=4):
    """Fig. 4-style intra-node partitioned send, observed end to end."""
    bus = obs_bus.Bus()
    collector = Collector()
    bus.subscribe(collector)
    obs_bus.install(bus)
    try:
        world = World(ONE_NODE)

        def main(ctx):
            comm = ctx.comm
            if ctx.rank == 0:
                sbuf = ctx.gpu.alloc(n, fill=1.0)
                sreq = yield from comm.psend_init(sbuf, partitions, dest=1, tag=0)
                yield from sreq.start()
                yield from sreq.pbuf_prepare()
                preq = yield from sreq.prequest_create(
                    ctx.gpu, grid=partitions, block=n // partitions, mode=mode
                )

                def body(blk):
                    yield blk.compute(WorkSpec.vector_add())
                    yield pdev.pready(blk, preq)

                yield from ctx.gpu.launch_h(
                    BlockKernel(partitions, n // partitions, body)
                )
                yield from sreq.wait()
            else:
                rbuf = ctx.gpu.alloc(n)
                rreq = yield from comm.precv_init(rbuf, partitions, source=0, tag=0)
                yield from rreq.start()
                yield from rreq.pbuf_prepare()
                yield from rreq.wait()
                assert np.all(rbuf.data == 1.0)

        world.run(main, nprocs=2)
    finally:
        obs_bus.uninstall()
    return world, collector.events


def test_workload_busy_tracks_are_plausible():
    world, events = _profiled_send()
    rep = utilization(events)
    assert rep.window > 0
    # The send kernel ran on gpu0's SMs and a progression engine dispatched.
    assert rep["gpu0.sm"].busy > 0
    assert any(t.busy > 0 for t in rep.group("progress_engine"))
    # Payload bytes appear on an NVLink track.
    nv = [t for t in rep.group("link") if t.kind == "nvlink"]
    assert sum(t.bytes for t in nv) >= 4096 * 8
    # Busy time never exceeds the observation window.
    assert all(t.busy <= rep.window + 1e-12 for t in rep.tracks.values())


def test_link_busy_bytes_match_fabric_telemetry():
    """Acceptance: per-class byte totals derived from link events equal the
    bench.telemetry in-place counters for the same run."""
    world, events = _profiled_send()
    flows = link_kind_totals(events)
    counters = FabricSnapshot().delta(snapshot(world.fabric))
    for kind, st in counters.classes.items():
        ev_bytes, ev_transfers = flows.get(kind, (0, 0))
        assert ev_bytes == st.bytes, kind
        assert ev_transfers == st.transfers, kind


def test_workload_critical_path_properties():
    world, events = _profiled_send()
    chain = critical_path(events)
    assert chain
    spans = [e for e in events if e.kind == SPAN]
    last = max(spans, key=lambda e: (e.t1, e.seq))
    assert chain[-1] is last
    # Chain is time-ordered with no overlapping consecutive spans.
    for prev, nxt in zip(chain, chain[1:]):
        assert prev.t1 <= nxt.t0 + 1e-12
    # Re-running the analysis replays the identical chain.
    assert [e.seq for e in critical_path(events)] == [e.seq for e in chain]
    assert "critical path:" in render_critical_path(chain)


def test_render_utilization_mentions_all_groups():
    world, events = _profiled_send()
    text = render_utilization(utilization(events))
    for token in ("gpu0.sm", "link", "progress_engine", "stream"):
        assert token in text
