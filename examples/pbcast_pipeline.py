#!/usr/bin/env python3
"""Partitioned broadcast: the generic schedule on an all-NOP collective.

Demonstrates the schedule generality the paper argues for (Section IV-B):
the same machinery that runs the ring allreduce executes a binomial-tree
broadcast — with *partition pipelining*: the root releases its user
partitions one at a time, and each flows down the tree independently,
long before the last partition is even ready.

    python examples/pbcast_pipeline.py
"""

import numpy as np

from repro.hw.params import PAPER_TESTBED
from repro.mpi.world import World
from repro.units import us

PARTITIONS = 8
N = PARTITIONS * 512


def main(ctx):
    comm = ctx.comm
    buf = ctx.gpu.alloc(N)
    if ctx.rank == 0:
        buf.data[:] = np.arange(N)

    req = yield from comm.pbcast_init(buf, partitions=PARTITIONS, root=0, device=ctx.gpu)
    yield from req.start()
    yield from req.pbuf_prepare()

    first_arrival = None
    if ctx.rank == 0:
        # Stagger releases: partition u becomes ready 10 us after u-1,
        # as if a producing kernel finished them incrementally.
        for u in range(PARTITIONS):
            yield ctx.engine.timeout(10 * us)
            yield from req.pready(u)
    else:
        # Watch MPI_Parrived flip per user partition (receivers poll).
        while not req.parrived(0):
            yield ctx.engine.timeout(2 * us)
        first_arrival = ctx.now

    yield from req.wait()
    done = ctx.now
    assert np.array_equal(buf.data, np.arange(N)), "broadcast payload corrupted"
    return (first_arrival, done)


if __name__ == "__main__":
    world = World(PAPER_TESTBED)
    results = world.run(main, nprocs=8)
    print("rank | first partition arrived | all partitions done")
    for rank, (first, done) in enumerate(results):
        first_s = f"{first / us:8.1f} us" if first else "   (root)   "
        print(f"  {rank}  |      {first_s}      | {done / us:8.1f} us")
    print("\npipelining: every rank sees its first partition long before the")
    print("root has even released the last one (8 x 10 us stagger).")
