"""The discrete-event engine: a time-ordered heap of triggered events.

Time is a ``float`` in **seconds**.  Constants throughout the code base use
the helpers in :mod:`repro.units` (``us``, ``GiB`` …) to stay readable.

Determinism: heap entries are ``(time, priority, seq)``; ``seq`` is a
monotone counter so ties break by insertion order.  Nothing in the engine
consults wall-clock time or global randomness.
"""

from __future__ import annotations

import heapq
import warnings
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.events import Event, Timeout
from repro.sim.process import Process, ProcessFailed
from repro.obs import bus as obs_bus


class EmptySchedule(Exception):
    """run() exhausted all events before reaching the requested time."""


class Engine:
    """Owns simulated time and the pending-event heap."""

    def __init__(self, trace: bool = False) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._crashed: Optional[ProcessFailed] = None
        #: Attached instrumentation bus, or None — the fast path.  Only
        #: :meth:`repro.obs.bus.Bus.attach` populates it, and only while
        #: the bus has subscribers, so every hook is one ``is None`` test.
        self.obs: Optional[obs_bus.Bus] = None
        self._trace_shim: Optional[obs_bus.TextLog] = None
        #: Optional hook called as ``on_step(time, priority, seq)`` for every
        #: popped event, in pop order.  The argument triple *is* the heap
        #: tie-break key — the determinism regression test hashes it.
        self.on_step: Optional[Callable[[float, int, int], None]] = None
        obs_bus.note_engine(self)
        if trace:
            warnings.warn(
                "Engine(trace=True) is deprecated; subscribe a consumer to "
                "the repro.obs bus instead (DESIGN.md §10)",
                DeprecationWarning,
                stacklevel=2,
            )
            self._trace_shim = obs_bus.TextLog()
            if self.obs is not None:
                self.obs.subscribe(self._trace_shim)
            else:
                shim_bus = obs_bus.Bus()
                shim_bus.subscribe(self._trace_shim)
                shim_bus.attach(self)

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: Optional[str] = None) -> Process:
        """Spawn ``gen`` as a process starting at the current time."""
        return Process(self, gen, name=name)

    # -- scheduling internals ---------------------------------------------------
    def _schedule_event(self, ev: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, ev))

    def _crash(self, process: Process, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = ProcessFailed(process, exc)

    def trace(self, msg: str) -> None:
        """Publish a free-form trace line at the current simulated time.

        A no-op unless a bus is attached; consumed by the deprecated
        ``trace_log`` shim and visible to every other subscriber.
        """
        if self.obs is not None:
            self.obs.instant("engine", "trace", None, t=self._now, msg=msg)

    @property
    def trace_enabled(self) -> bool:
        """Deprecated alias: True when an instrumentation bus is attached."""
        return self.obs is not None

    @property
    def trace_log(self) -> List[Tuple[float, str]]:
        """Deprecated: ``(time, message)`` pairs kept by the trace shim.

        Empty unless the engine was built with ``trace=True``; new code
        should subscribe :class:`repro.obs.bus.TextLog` to a bus instead.
        """
        return self._trace_shim.lines if self._trace_shim is not None else []

    # -- main loop ------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        time, _prio, _seq, ev = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise RuntimeError("time went backwards")
        self._now = time
        if self.on_step is not None:
            self.on_step(time, _prio, _seq)
        if self.obs is not None:
            self.obs.instant("engine", "step", None, t=time, prio=_prio, seq=_seq)
        ev._run_callbacks()
        if self._crashed is not None:
            crashed, self._crashed = self._crashed, None
            raise crashed

    def run(self, until: Optional[Any] = None) -> Any:
        """Run until ``until`` (an Event, a time, or None for exhaustion).

        Returns the event's value when ``until`` is an Event.  Raises
        :class:`~repro.sim.process.ProcessFailed` if an unwaited process
        crashed, or the original exception if ``until`` itself failed.
        """
        if until is None:
            while self._heap:
                self.step()
            return None

        if isinstance(until, Event):
            done = []
            until.add_callback(done.append)
            while not done:
                if not self._heap:
                    raise EmptySchedule(
                        f"no more events at t={self._now}; target event never fired"
                    )
                self.step()
            if until.ok:
                return until.value
            exc = until.value
            raise exc if isinstance(exc, BaseException) else RuntimeError(repr(exc))

        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run to the past: {horizon} < {self._now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.9f} pending={len(self._heap)}>"
